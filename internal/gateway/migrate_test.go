package gateway_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"seculator/internal/gateway"
	"seculator/internal/serve"
)

// snapshotState is the subset of the sealed payload the migration tests
// assert on: the replay window position and the MAC registers.
type snapshotState struct {
	ID      string          `json:"id"`
	LastSeq uint64          `json:"last_seq"`
	Regs    json.RawMessage `json:"regs"`
}

func decodeState(t *testing.T, env *serve.SnapshotEnvelope) snapshotState {
	t.Helper()
	if env == nil {
		t.Fatal("nil snapshot envelope")
	}
	var st snapshotState
	if err := json.Unmarshal(env.Payload, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// The headline migration guarantee, exercised end to end under -race:
// create a session on replica A through the gateway, run inference so it
// has MAC-register and sequence state, kill A abruptly, and verify the
// session continues on replica B with *bit-identical* durable state —
// the sealed payload B serves equals the last one A acknowledged, MAC
// registers and replay window included — and further inference under the
// session succeeds with the sequence window advancing, never rewinding.
func TestSessionMigrationSurvivesReplicaKill(t *testing.T) {
	c, gc := startCluster(t, 2)
	ctx := ctxT(t)

	sess, err := gc.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	id := sess.SessionID
	homeA := c.Gateway.Locations()[id]
	if homeA == "" {
		t.Fatal("session not vaulted")
	}

	// Build up session state: the piggybacked snapshot of the last infer
	// is the reference the survivor must reproduce bit-identically.
	var lastEnv *serve.SnapshotEnvelope
	for i := 0; i < 3; i++ {
		resp, err := gc.Infer(ctx, serve.InferRequest{
			Network: "Mini", Seed: int64(10 + i), Session: id, ReturnSnapshot: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Replica != homeA {
			t.Fatalf("pre-kill infer served by %s, home %s", resp.Replica, homeA)
		}
		lastEnv = resp.Snapshot
	}
	preKill := decodeState(t, lastEnv)
	if preKill.LastSeq == 0 || len(preKill.Regs) == 0 {
		t.Fatalf("session accumulated no durable state: %+v", preKill)
	}

	c.Kill(homeA)
	waitFor(t, 15*time.Second, "failover to the survivor", func() bool {
		home := c.Gateway.Locations()[id]
		return home != "" && home != homeA
	})
	homeB := c.Gateway.Locations()[id]

	// Before any new inference, B's exported snapshot must be
	// bit-identical to the last sealed state A acknowledged.
	snap, err := gc.SnapshotSession(ctx, id)
	if err != nil {
		t.Fatalf("snapshot from survivor: %v", err)
	}
	if !bytes.Equal(snap.Snapshot.Payload, lastEnv.Payload) {
		t.Fatalf("survivor payload diverged:\n  A: %s\n  B: %s", lastEnv.Payload, snap.Snapshot.Payload)
	}
	postKill := decodeState(t, &snap.Snapshot)
	if postKill.LastSeq != preKill.LastSeq || !bytes.Equal(postKill.Regs, preKill.Regs) {
		t.Fatalf("durable state mismatch: %+v vs %+v", preKill, postKill)
	}

	// The session continues on B: the replay window advances (monotone
	// sequence), commands flow, and the serving replica is the survivor.
	resp, err := gc.Infer(ctx, serve.InferRequest{
		Network: "Mini", Seed: 77, Session: id, ReturnSnapshot: true,
	})
	if err != nil {
		t.Fatalf("post-kill infer: %v", err)
	}
	if resp.Replica != homeB {
		t.Fatalf("post-kill infer served by %s, want %s", resp.Replica, homeB)
	}
	if resp.Commands == 0 {
		t.Fatal("post-kill inference skipped the authenticated command channel")
	}
	cont := decodeState(t, resp.Snapshot)
	if cont.LastSeq <= preKill.LastSeq {
		t.Fatalf("replay window rewound: %d → %d", preKill.LastSeq, cont.LastSeq)
	}
}

// A transient transport failure against a live replica must NOT trigger
// failover (restoring a stale snapshot while the home holds newer state
// would fork the sequence window). The gateway verifies death with a
// direct liveness check before restoring anywhere else; with the home
// alive the worst case is an upstream error, never a fork.
func TestNoFailoverWhileHomeAlive(t *testing.T) {
	c, gc := startCluster(t, 2)
	ctx := ctxT(t)
	sess, err := gc.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	id := sess.SessionID
	home := c.Gateway.Locations()[id]
	for i := 0; i < 2; i++ {
		if _, err := gc.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(i), Session: id}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Gateway.Locations()[id]; got != home {
		t.Fatalf("session moved %s→%s with a healthy home", home, got)
	}
}

// Restoring a tenant-exported snapshot through the gateway homes the
// session on its ring owner and the vault adopts it.
func TestGatewayRestoreRoutesToOwner(t *testing.T) {
	c, gc := startCluster(t, 3)
	ctx := ctxT(t)
	sess, err := gc.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	id := sess.SessionID
	if _, err := gc.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 3, Session: id}); err != nil {
		t.Fatal(err)
	}
	snap, err := gc.SnapshotSession(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if err := gc.CloseSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	restored, err := gc.RestoreSession(ctx, snap.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if restored.SessionID != id {
		t.Fatalf("restore changed the session id: %s → %s", id, restored.SessionID)
	}
	if home := c.Gateway.Locations()[id]; home == "" {
		t.Fatal("restored session not vaulted")
	}
	if _, err := gc.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 4, Session: id}); err != nil {
		t.Fatalf("infer after restore: %v", err)
	}
}

// A tampered envelope through the gateway still fails closed at the
// replica (422 snapshot_integrity) and never creates vault state.
func TestGatewayRestoreTamperFailsClosed(t *testing.T) {
	_, gc := startCluster(t, 2)
	ctx := ctxT(t)
	sess, err := gc.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := gc.SnapshotSession(ctx, sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if err := gc.CloseSession(ctx, sess.SessionID); err != nil {
		t.Fatal(err)
	}
	evil := snap.Snapshot
	evil.Payload = bytes.Replace(evil.Payload, []byte(`"last_seq":`), []byte(`"last_seq":9`), 1)
	if _, err := gc.RestoreSession(ctx, evil); err == nil {
		t.Fatal("tampered snapshot restored through the gateway")
	}
}

// Config validation refuses the shapes the router cannot act on.
func TestConfigValidate(t *testing.T) {
	bad := []gateway.Config{
		{},
		{Replicas: []gateway.ReplicaConfig{{Name: "", URL: "http://x"}}},
		{Replicas: []gateway.ReplicaConfig{{Name: "a", URL: ""}}},
		{Replicas: []gateway.ReplicaConfig{{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"}}},
		{Replicas: []gateway.ReplicaConfig{{Name: "a", URL: "http://x"}}, LoadFactor: 0.5},
		{Replicas: []gateway.ReplicaConfig{{Name: "a", URL: "http://x"}}, Vnodes: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d validated: %+v", i, cfg)
		}
	}
	good := gateway.Config{Replicas: []gateway.ReplicaConfig{{Name: "a", URL: "http://x"}}, LoadFactor: 1.5, Vnodes: 16}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}
