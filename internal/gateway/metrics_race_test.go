package gateway_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"seculator/internal/serve"
)

// metricValue extracts one sample from a /metrics scrape. Labeled
// families are summed across label sets when name has no label selector.
func metricValue(t *testing.T, scrape, name string) float64 {
	t.Helper()
	v, ok := metricLookup(t, scrape, name)
	if !ok {
		t.Fatalf("metric %s missing from scrape:\n%s", name, scrape)
	}
	return v
}

func metricLookup(t *testing.T, scrape, name string) (float64, bool) {
	t.Helper()
	var sum float64
	found := false
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != ' ' && rest[0] != '{' {
			continue // prefix of a longer metric name
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q: %v", line, err)
		}
		sum += v
		found = true
	}
	return sum, found
}

// TestGatewayMetricsConcurrentScrapeConsistency extends the serve-side
// monotonicity race test to the gateway's per-replica counters: infer
// traffic (stateless and session-bound) races /metrics scrapes, every
// monotone family only ever moves forward per scraper, and the quiesced
// totals line up with the work performed across the fleet.
func TestGatewayMetricsConcurrentScrapeConsistency(t *testing.T) {
	c, gc := startCluster(t, 2)
	ctx := ctxT(t)

	const inferWorkers = 4
	const infersPerWorker = 6
	const scrapeWorkers = 3

	monotone := []string{
		"seculator_gateway_requests_total",
		"seculator_gateway_retries_total",
		"seculator_gateway_migrations_total",
		"seculator_gateway_migration_failures_total",
		"seculator_gateway_replica_requests_total",
		"seculator_gateway_replica_errors_total",
		"seculator_gateway_replica_latency_ms_total",
		"seculator_gateway_replica_ejections_total",
		"seculator_gateway_ring_generation",
	}
	perReplica := []string{
		"seculator_gateway_replica_requests_total",
		"seculator_gateway_replica_errors_total",
		"seculator_gateway_replica_latency_ms_total",
	}

	sess, err := gc.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for w := 0; w < scrapeWorkers; w++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			last := make(map[string]float64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				scrape, err := gc.Metrics(ctx)
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				names := monotone
				// Per-replica monotonicity, each label set on its own.
				for _, fam := range perReplica {
					for _, rep := range c.Replicas {
						names = append(names, fam+`{replica="`+rep.Name+`"}`)
					}
				}
				for _, name := range names {
					v, _ := metricLookup(t, scrape, name)
					if v < last[name] {
						t.Errorf("%s went backwards: %v -> %v", name, last[name], v)
					}
					last[name] = v
				}
			}
		}()
	}

	var infers sync.WaitGroup
	errc := make(chan error, inferWorkers)
	for w := 0; w < inferWorkers; w++ {
		infers.Add(1)
		go func(w int) {
			defer infers.Done()
			for i := 0; i < infersPerWorker; i++ {
				req := serve.InferRequest{Network: "Mini", Seed: int64(w*1000 + i)}
				if w == 0 {
					req.Session = sess.SessionID // one worker exercises the session path
				}
				if _, err := gc.Infer(ctx, req); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}

	infers.Wait()
	close(stop)
	scrapers.Wait()
	select {
	case err := <-errc:
		t.Fatalf("infer: %v", err)
	default:
	}

	scrape, err := gc.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(inferWorkers * infersPerWorker)
	// Every inference produced exactly one gateway 200 (plus the session
	// create and any snapshot piggyback work, all on replica counters).
	if ok200 := metricValue(t, scrape, `seculator_gateway_requests_total{code="200"}`); ok200 < total {
		t.Errorf(`requests_total{code="200"} = %v, want >= %v`, ok200, total)
	}
	// Replica attribution covers the full load: the per-replica forward
	// counters sum to at least the inferences (the create adds one more).
	if fwd := metricValue(t, scrape, "seculator_gateway_replica_requests_total"); fwd < total {
		t.Errorf("replica_requests_total = %v, want >= %v", fwd, total)
	}
	if gen := metricValue(t, scrape, "seculator_gateway_ring_generation"); gen < 1 {
		t.Errorf("ring_generation = %v, want >= 1", gen)
	}
	if vaulted := metricValue(t, scrape, "seculator_gateway_vault_sessions"); vaulted != 1 {
		t.Errorf("vault_sessions = %v, want 1", vaulted)
	}
}
