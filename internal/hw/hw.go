// Package hw estimates the silicon cost of Seculator's security hardware —
// the substitution for the paper's Verilog synthesis flow (Cadence Genus,
// 28 nm scaled to 8 nm; see DESIGN.md). The model combines per-module gate
// counts with technology constants calibrated so that the headline modules
// reproduce Table 6:
//
//	AES-128       3900 µm²   640 µW
//	SHA-256        270 µm²    40 µW
//	VN generator    40 µm²   4.4 µW
package hw

import "fmt"

// Module is one synthesized hardware block.
type Module struct {
	Name      string
	GateCount int     // NAND2-equivalent gates
	AreaUM2   float64 // area at 8 nm, µm²
	PowerUW   float64 // dynamic power at nominal activity, µW
}

// Technology constants at the scaled 8 nm node: area per NAND2-equivalent
// gate and switching power per gate at the NPU's 2.75 GHz clock. The AES
// datapath (the best-characterized block) anchors the calibration:
// ~22k gates for four parallel AES-128 lanes with key schedule.
const (
	AreaPerGateUM2 = 0.177 // µm² per gate
	PowerPerGateUW = 0.029 // µW per gate
)

// fromGates derives area/power from a gate count and the module's switching
// activity factor (fraction of gates toggling per cycle at nominal load).
func fromGates(name string, gates int, activity float64) Module {
	return Module{
		Name:      name,
		GateCount: gates,
		AreaUM2:   round1(float64(gates) * AreaPerGateUM2),
		PowerUW:   round1(float64(gates) * PowerPerGateUW * activity),
	}
}

func round1(v float64) float64 {
	return float64(int(v*10+0.5)) / 10
}

// SeculatorModules returns the security-module inventory of Table 6.
func SeculatorModules() []Module {
	return []Module{
		// 4 parallel lanes + key schedule, streaming every cycle.
		fromGates("AES-128", 22034, 1.0),
		// Round-iterative core; idles between block ingests.
		fromGates("SHA-256", 1525, 0.905),
		// 6 x 32-bit registers + increment/compare logic; one counter
		// toggles per tile event.
		fromGates("VN generator", 226, 0.671),
	}
}

// TotalArea sums the module areas in µm².
func TotalArea(ms []Module) float64 {
	var a float64
	for _, m := range ms {
		a += m.AreaUM2
	}
	return a
}

// TotalPower sums the module powers in µW.
func TotalPower(ms []Module) float64 {
	var p float64
	for _, m := range ms {
		p += m.PowerUW
	}
	return p
}

// RegisterFileBits returns the storage Seculator adds beyond the modules:
// two banks of four 256-bit XOR-MAC registers plus the VN FSM state —
// versus the 8 KB MAC cache and 4 KB counter cache (plus tensor-table or
// host state) of the prior designs.
func RegisterFileBits() int {
	const macRegisters = 2 * 4 * 256
	const vnFSM = 6 * 32
	return macRegisters + vnFSM
}

// PriorWorkStorageBits returns the on-chip metadata storage of the
// Secure/TNPU designs (MAC cache + counter cache) for comparison.
func PriorWorkStorageBits() int {
	return (8*1024 + 4*1024) * 8
}

// String renders a module row.
func (m Module) String() string {
	return fmt.Sprintf("%-14s %8d gates %9.1f um^2 %7.1f uW", m.Name, m.GateCount, m.AreaUM2, m.PowerUW)
}
