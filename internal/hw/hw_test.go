package hw

import (
	"math"
	"testing"
)

// The model must reproduce Table 6 within 5% per module.
func TestTable6Calibration(t *testing.T) {
	want := map[string][2]float64{
		"AES-128":      {3900, 640},
		"SHA-256":      {270, 40},
		"VN generator": {40, 4.4},
	}
	ms := SeculatorModules()
	if len(ms) != 3 {
		t.Fatalf("module count = %d", len(ms))
	}
	for _, m := range ms {
		w, ok := want[m.Name]
		if !ok {
			t.Fatalf("unexpected module %q", m.Name)
		}
		if rel := math.Abs(m.AreaUM2-w[0]) / w[0]; rel > 0.05 {
			t.Errorf("%s area %.1f um^2, Table 6 says %.1f (off %.1f%%)", m.Name, m.AreaUM2, w[0], rel*100)
		}
		if rel := math.Abs(m.PowerUW-w[1]) / w[1]; rel > 0.05 {
			t.Errorf("%s power %.1f uW, Table 6 says %.1f (off %.1f%%)", m.Name, m.PowerUW, w[1], rel*100)
		}
	}
}

func TestTotals(t *testing.T) {
	ms := SeculatorModules()
	area := TotalArea(ms)
	// The paper quotes a total of 4210 um^2.
	if math.Abs(area-4210) > 210 {
		t.Errorf("total area = %.1f um^2, paper says 4210", area)
	}
	if p := TotalPower(ms); p <= 0 || p >= 1000 {
		t.Errorf("total power = %.1f uW, paper says sub-mW", p)
	}
}

// The storage argument of the paper: Seculator's register state is orders
// of magnitude below the caches of prior work.
func TestStorageComparison(t *testing.T) {
	sec := RegisterFileBits()
	prior := PriorWorkStorageBits()
	if sec >= prior/32 {
		t.Fatalf("Seculator state (%d bits) not far below prior work (%d bits)", sec, prior)
	}
	if sec != 2*4*256+6*32 {
		t.Fatalf("register bits = %d", sec)
	}
}

func TestModuleString(t *testing.T) {
	for _, m := range SeculatorModules() {
		if m.String() == "" || m.GateCount <= 0 {
			t.Fatalf("bad module: %+v", m)
		}
	}
}
