package pattern

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTripletLenAndAt(t *testing.T) {
	tr := Triplet{Eta: 3, Kappa: 2, Rho: 2}
	if tr.Len() != 12 {
		t.Fatalf("Len = %d, want 12", tr.Len())
	}
	want := []int{1, 1, 1, 2, 2, 2, 1, 1, 1, 2, 2, 2}
	if got := tr.Expand(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Expand = %v, want %v", got, want)
	}
	if tr.MaxVN() != 2 {
		t.Fatalf("MaxVN = %d", tr.MaxVN())
	}
}

func TestTripletAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range should panic")
		}
	}()
	Triplet{Eta: 1, Kappa: 1, Rho: 1}.At(1)
}

func TestEmptyTriplet(t *testing.T) {
	if !Empty.IsEmpty() || Empty.Len() != 0 || !Empty.Valid() {
		t.Fatal("Empty triplet misbehaves")
	}
	if len(Empty.Expand()) != 0 {
		t.Fatal("Empty.Expand should be empty")
	}
	if Empty.String() != "-" {
		t.Fatalf("Empty.String = %q", Empty.String())
	}
}

func TestTripletValid(t *testing.T) {
	if (Triplet{Eta: 0, Kappa: 2, Rho: 1}).Valid() {
		t.Fatal("partial-zero triplet should be invalid")
	}
	if !(Triplet{Eta: 1, Kappa: 1, Rho: 1}).Valid() {
		t.Fatal("unit triplet should be valid")
	}
}

func TestTripletString(t *testing.T) {
	cases := []struct {
		tr   Triplet
		want string
	}{
		{Triplet{Eta: 4, Kappa: 1, Rho: 1}, "1^4"},
		{Triplet{Eta: 2, Kappa: 1, Rho: 3}, "1^6"},
		{Triplet{Eta: 1, Kappa: 3, Rho: 1}, "1,2...3"},
		{Triplet{Eta: 2, Kappa: 3, Rho: 1}, "1^2,2^2...3^2"},
		{Triplet{Eta: 2, Kappa: 3, Rho: 4}, "(1^2,2^2...3^2)^4"},
		{Triplet{Eta: 1, Kappa: 2, Rho: 5}, "(1,2)^5"},
	}
	for _, c := range cases {
		if got := c.tr.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.tr, got, c.want)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		tr   Triplet
		want Class
	}{
		{Empty, ClassEmpty},
		{Triplet{Eta: 4, Kappa: 3, Rho: 2}, P1MultiStep},
		{Triplet{Eta: 4, Kappa: 3, Rho: 1}, P2Step},
		{Triplet{Eta: 1, Kappa: 5, Rho: 1}, P3Linear},
		{Triplet{Eta: 1, Kappa: 5, Rho: 2}, P4Sawtooth},
		{Triplet{Eta: 9, Kappa: 1, Rho: 1}, P5Line},
		{Triplet{Eta: 9, Kappa: 1, Rho: 7}, P5Line},
	}
	for _, c := range cases {
		if got := Classify(c.tr); got != c.want {
			t.Errorf("Classify(%+v) = %v, want %v", c.tr, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{ClassEmpty, P1MultiStep, P2Step, P3Linear, P4Sawtooth, P5Line} {
		if c.String() == "" {
			t.Fatalf("empty string for class %d", c)
		}
	}
}

func TestCompressRoundTrip(t *testing.T) {
	cases := []Triplet{
		{Eta: 1, Kappa: 2, Rho: 1},
		{Eta: 3, Kappa: 4, Rho: 2},
		{Eta: 1, Kappa: 7, Rho: 3},
		{Eta: 5, Kappa: 2, Rho: 1},
	}
	for _, tr := range cases {
		got, ok := Compress(tr.Expand())
		if !ok {
			t.Fatalf("Compress(%v) failed", tr)
		}
		if !Equal(got, tr) {
			t.Fatalf("Compress(%v.Expand()) = %v", tr, got)
		}
	}
}

func TestCompressLineCanonical(t *testing.T) {
	// All splits of a constant-1 sequence must compress to the same
	// canonical Line.
	got, ok := Compress([]int{1, 1, 1, 1, 1, 1})
	if !ok {
		t.Fatal("Compress failed on line")
	}
	want := Triplet{Eta: 6, Kappa: 1, Rho: 1}
	if got != want {
		t.Fatalf("canonical line = %v, want %v", got, want)
	}
	if !Equal(got, Triplet{Eta: 2, Kappa: 1, Rho: 3}) {
		t.Fatal("Equal should treat equal-length lines as equal")
	}
}

func TestCompressEmpty(t *testing.T) {
	got, ok := Compress(nil)
	if !ok || !got.IsEmpty() {
		t.Fatalf("Compress(nil) = %v, %v", got, ok)
	}
}

func TestCompressRejectsNonPatterns(t *testing.T) {
	bad := [][]int{
		{2, 2, 1, 1},          // doesn't start at 1
		{1, 1, 2, 1},          // ragged run lengths
		{1, 2, 2},             // run length grows
		{1, 2, 3, 1, 2},       // truncated repeat
		{1, 2, 1, 3},          // ramp changes height mid-way
		{1, 3},                // skips a VN
		{1, 2, 2, 1, 2, 2, 2}, // final ramp too long
	}
	for _, seq := range bad {
		if tr, ok := Compress(seq); ok {
			t.Errorf("Compress(%v) accepted as %v", seq, tr)
		}
	}
}

func TestEqualEmptyHandling(t *testing.T) {
	if Equal(Empty, Triplet{Eta: 1, Kappa: 1, Rho: 1}) {
		t.Fatal("empty != non-empty")
	}
	if !Equal(Empty, Empty) {
		t.Fatal("empty == empty")
	}
}

func TestRunLengthEncode(t *testing.T) {
	seq := []int{1, 1, 2, 2, 2, 1}
	got := RunLengthEncode(seq)
	want := []RLE{{1, 2}, {2, 3}, {1, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RLE = %v, want %v", got, want)
	}
	if FormatRLE(got) != "1^2,2^3,1" {
		t.Fatalf("FormatRLE = %q", FormatRLE(got))
	}
	if FormatRLE(nil) != "-" {
		t.Fatal("FormatRLE(nil) should be '-'")
	}
}

// Property: Compress is a left inverse of Expand for all valid triplets.
func TestCompressExpandProperty(t *testing.T) {
	f := func(e, k, r uint8) bool {
		tr := Triplet{Eta: int(e%5) + 1, Kappa: int(k%5) + 1, Rho: int(r%4) + 1}
		got, ok := Compress(tr.Expand())
		return ok && Equal(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: At agrees with Expand at every index.
func TestAtMatchesExpandProperty(t *testing.T) {
	f := func(e, k, r uint8) bool {
		tr := Triplet{Eta: int(e%4) + 1, Kappa: int(k%4) + 1, Rho: int(r%3) + 1}
		exp := tr.Expand()
		for i, v := range exp {
			if tr.At(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sequence never exceeds κ and every ramp starts at 1.
func TestSequenceBoundsProperty(t *testing.T) {
	f := func(e, k, r uint8) bool {
		tr := Triplet{Eta: int(e%6) + 1, Kappa: int(k%6) + 1, Rho: int(r%4) + 1}
		for i, v := range tr.Expand() {
			if v < 1 || v > tr.Kappa {
				return false
			}
			if i%(tr.Eta*tr.Kappa) == 0 && v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
