// Package pattern implements the analytical characterization of version
// number (VN) sequences from Section 5 of the Seculator paper.
//
// A pair of observers at the NPU's global buffer record the VN of every
// ofmap tile read or written during a layer. For every dataflow the paper
// studies, both observed sequences are instances of one master equation:
//
//	(1^η, 2^η, …, κ^η)^ρ
//
// i.e. the value 1 repeated η times, then 2 repeated η times, up to κ, with
// the whole ramp repeated ρ times. The triplet ⟨η, κ, ρ⟩ is all the state a
// hardware generator needs. This package provides the triplet type, its
// expansion, the P1–P5 pattern taxonomy (Table 2), run-length compression of
// observed sequences back into triplets, and symbolic rendering used by the
// pattern-table tooling.
package pattern

import (
	"fmt"
	"strings"
)

// Triplet is the master-equation parameter set ⟨η, κ, ρ⟩.
//
// Eta (η) is the run length of each VN value, Kappa (κ) the number of
// distinct VN values in one ramp, and Rho (ρ) the number of times the ramp
// repeats. A Triplet with any field <= 0 but not all zero is invalid; the
// zero Triplet denotes an empty sequence (e.g. the read pattern of an
// output-reuse dataflow, which never reads partial ofmaps back).
type Triplet struct {
	Eta   int
	Kappa int
	Rho   int
}

// Empty is the triplet of the empty VN sequence (no reads / no writes).
var Empty = Triplet{}

// IsEmpty reports whether t denotes the empty sequence.
func (t Triplet) IsEmpty() bool { return t == Empty }

// Valid reports whether t is either empty or has all-positive fields.
func (t Triplet) Valid() bool {
	return t.IsEmpty() || (t.Eta > 0 && t.Kappa > 0 && t.Rho > 0)
}

// Len returns the length of the expanded sequence, η·κ·ρ.
func (t Triplet) Len() int {
	if t.IsEmpty() {
		return 0
	}
	return t.Eta * t.Kappa * t.Rho
}

// MaxVN returns the largest VN the sequence contains (κ), or 0 when empty.
func (t Triplet) MaxVN() int { return t.Kappa }

// At returns the i-th VN (0-indexed) of the expanded sequence without
// materializing it: 1 + (i / η) mod κ. It panics if i is out of range.
func (t Triplet) At(i int) int {
	if i < 0 || i >= t.Len() {
		panic(fmt.Sprintf("pattern: index %d out of range for %v (len %d)", i, t, t.Len()))
	}
	return 1 + (i/t.Eta)%t.Kappa
}

// Expand materializes the full VN sequence. Intended for tests and tools;
// the simulator uses the streaming Generator in package vngen.
func (t Triplet) Expand() []int {
	out := make([]int, t.Len())
	for i := range out {
		out[i] = t.At(i)
	}
	return out
}

// String renders the triplet in the paper's symbolic notation, e.g.
// "(1^4,2^4...8^4)^2". Degenerate dimensions are simplified:
// κ=1 renders as "1^η·ρ" (a Line), ρ=1 drops the outer exponent.
func (t Triplet) String() string {
	if t.IsEmpty() {
		return "-"
	}
	if t.Kappa == 1 {
		return fmt.Sprintf("1^%d", t.Eta*t.Rho)
	}
	var ramp string
	switch {
	case t.Kappa == 2 && t.Eta == 1:
		ramp = "1,2"
	case t.Kappa == 2:
		ramp = fmt.Sprintf("1^%d,2^%d", t.Eta, t.Eta)
	case t.Eta == 1:
		ramp = fmt.Sprintf("1,2...%d", t.Kappa)
	default:
		ramp = fmt.Sprintf("1^%d,2^%d...%d^%d", t.Eta, t.Eta, t.Kappa, t.Eta)
	}
	if t.Rho == 1 {
		return ramp
	}
	return fmt.Sprintf("(%s)^%d", ramp, t.Rho)
}

// Class is the paper's taxonomy of VN patterns (Table 2, P1–P5).
type Class uint8

const (
	// ClassEmpty is the empty sequence (no accesses of that kind).
	ClassEmpty Class = iota
	// P1 Multi-step: η>1, κ>1, ρ>1 — ramps of runs, repeated.
	P1MultiStep
	// P2 Step: η>1, κ>1, ρ=1 — one ramp of runs.
	P2Step
	// P3 Linear: η=1, κ>1, ρ=1 — 1,2,3,…,κ.
	P3Linear
	// P4 Sawtooth: η=1, κ>1, ρ>1 — plain ramps, repeated.
	P4Sawtooth
	// P5 Line: κ=1 — a constant run of 1s.
	P5Line
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassEmpty:
		return "empty"
	case P1MultiStep:
		return "P1:Multi-step"
	case P2Step:
		return "P2:Step"
	case P3Linear:
		return "P3:Linear"
	case P4Sawtooth:
		return "P4:Sawtooth"
	case P5Line:
		return "P5:Line"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Classify maps a triplet to its pattern class.
func Classify(t Triplet) Class {
	switch {
	case t.IsEmpty():
		return ClassEmpty
	case t.Kappa == 1:
		return P5Line
	case t.Eta == 1 && t.Rho == 1:
		return P3Linear
	case t.Eta == 1:
		return P4Sawtooth
	case t.Rho == 1:
		return P2Step
	default:
		return P1MultiStep
	}
}

// Compress infers the unique canonical triplet that expands to seq, or
// returns ok=false if seq is not an instance of the master equation.
// Canonical form: for constant sequences of 1s (κ=1) the run is folded into
// η with ρ=1; otherwise η is the (uniform) run length, κ the ramp height,
// and ρ the repeat count.
func Compress(seq []int) (t Triplet, ok bool) {
	if len(seq) == 0 {
		return Empty, true
	}
	// Uniform run length check: first value must be 1.
	if seq[0] != 1 {
		return Empty, false
	}
	// Measure η: length of the leading run of 1s.
	eta := 0
	for eta < len(seq) && seq[eta] == 1 {
		eta++
	}
	if eta == len(seq) {
		// All ones: a Line. Canonical: η=len, κ=1, ρ=1.
		return Triplet{Eta: eta, Kappa: 1, Rho: 1}, true
	}
	// Walk the first ramp: values must step 1,2,…,κ, each with run length η.
	i, want := 0, 1
	for i < len(seq) && seq[i] == want {
		runLen := 0
		for i < len(seq) && seq[i] == want {
			runLen++
			i++
		}
		if runLen != eta {
			return Empty, false
		}
		want++
	}
	kappa := want - 1
	if kappa < 2 {
		return Empty, false
	}
	rampLen := eta * kappa
	if len(seq)%rampLen != 0 {
		return Empty, false
	}
	rho := len(seq) / rampLen
	cand := Triplet{Eta: eta, Kappa: kappa, Rho: rho}
	// Verify the whole sequence (the prefix walk only checked ramp one).
	for j, v := range seq {
		if cand.At(j) != v {
			return Empty, false
		}
	}
	return cand, true
}

// Equal reports whether two triplets expand to the same sequence. Triplets
// are compared canonically: Lines with the same total length are equal
// regardless of the η/ρ split.
func Equal(a, b Triplet) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return a.IsEmpty() && b.IsEmpty()
	}
	if a.Kappa == 1 && b.Kappa == 1 {
		return a.Len() == b.Len()
	}
	return a == b
}

// RLE is one run of a run-length-encoded VN sequence.
type RLE struct {
	VN  int
	Run int
}

// RunLengthEncode compresses a VN sequence into runs, the form in which the
// pattern tables print read/write patterns.
func RunLengthEncode(seq []int) []RLE {
	var out []RLE
	for _, v := range seq {
		if n := len(out); n > 0 && out[n-1].VN == v {
			out[n-1].Run++
			continue
		}
		out = append(out, RLE{VN: v, Run: 1})
	}
	return out
}

// FormatRLE renders runs like "1^4,2^4,1^4,2^4".
func FormatRLE(runs []RLE) string {
	if len(runs) == 0 {
		return "-"
	}
	parts := make([]string, len(runs))
	for i, r := range runs {
		if r.Run == 1 {
			parts[i] = fmt.Sprintf("%d", r.VN)
		} else {
			parts[i] = fmt.Sprintf("%d^%d", r.VN, r.Run)
		}
	}
	return strings.Join(parts, ",")
}
