package pattern

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a pattern expression in the paper's symbolic notation back
// into a triplet — the inverse of Triplet.String. Accepted forms:
//
//	"-"                      the empty pattern
//	"1^6"                    a Line (κ=1)
//	"1,2...5"                a plain ramp (η=1, ρ=1)
//	"1^2,2^2...4^2"          a ramp of runs (ρ=1)
//	"(1^2,2^2...4^2)^3"      a repeated ramp
//	"(1,2...4)^3"            a repeated plain ramp
//
// The ellipsis may be written "..." or "…". Whitespace is ignored.
func Parse(s string) (Triplet, error) {
	s = strings.ReplaceAll(s, " ", "")
	s = strings.ReplaceAll(s, "…", "...")
	if s == "" || s == "-" {
		return Empty, nil
	}

	rho := 1
	if strings.HasPrefix(s, "(") {
		close := strings.LastIndexByte(s, ')')
		if close < 0 {
			return Empty, fmt.Errorf("pattern: unbalanced parenthesis in %q", s)
		}
		tail := s[close+1:]
		if !strings.HasPrefix(tail, "^") {
			return Empty, fmt.Errorf("pattern: parenthesized ramp needs ^rho in %q", s)
		}
		r, err := strconv.Atoi(tail[1:])
		if err != nil || r <= 0 {
			return Empty, fmt.Errorf("pattern: bad repeat count in %q", s)
		}
		rho = r
		s = s[1:close]
	}

	ramp, err := parseRamp(s)
	if err != nil {
		return Empty, err
	}
	ramp.Rho = rho
	// Canonicalize Lines: fold the repeat into η, as Compress does.
	if ramp.Kappa == 1 {
		return Triplet{Eta: ramp.Eta * ramp.Rho, Kappa: 1, Rho: 1}, nil
	}
	return ramp, nil
}

// parseRamp parses "1^e,2^e...k^e", "1,2...k" or "1^e" (η,κ with ρ=1).
func parseRamp(s string) (Triplet, error) {
	parts := strings.Split(s, "...")
	switch len(parts) {
	case 1:
		// An explicitly enumerated ramp: "1^e", "1,2", "1^e,2^e,3^e".
		runs := strings.Split(parts[0], ",")
		eta := 0
		for i, run := range runs {
			v, e, err := parseRun(run)
			if err != nil {
				return Empty, err
			}
			if v != i+1 {
				return Empty, fmt.Errorf("pattern: enumerated ramp %q does not count from 1", s)
			}
			if i == 0 {
				eta = e
			} else if e != eta {
				return Empty, fmt.Errorf("pattern: ragged run lengths in %q", s)
			}
		}
		return Triplet{Eta: eta, Kappa: len(runs), Rho: 1}, nil
	case 2:
		head := strings.Split(parts[0], ",")
		if len(head) == 0 || head[0] == "" {
			return Empty, fmt.Errorf("pattern: empty ramp head in %q", s)
		}
		// Head runs must count 1,2,... with a uniform exponent.
		eta := 0
		for i, h := range head {
			v, e, err := parseRun(h)
			if err != nil {
				return Empty, err
			}
			if v != i+1 {
				return Empty, fmt.Errorf("pattern: ramp head %q does not count from 1", s)
			}
			if i == 0 {
				eta = e
			} else if e != eta {
				return Empty, fmt.Errorf("pattern: ragged run lengths in %q", s)
			}
		}
		kv, ke, err := parseRun(parts[1])
		if err != nil {
			return Empty, err
		}
		if ke != eta {
			return Empty, fmt.Errorf("pattern: final run length %d != %d in %q", ke, eta, s)
		}
		if kv <= len(head) {
			return Empty, fmt.Errorf("pattern: ramp top %d not beyond head in %q", kv, s)
		}
		return Triplet{Eta: eta, Kappa: kv, Rho: 1}, nil
	default:
		return Empty, fmt.Errorf("pattern: multiple ellipses in %q", s)
	}
}

// parseRun parses "v^e" or "v" (e=1).
func parseRun(s string) (value, exp int, err error) {
	v, e := s, "1"
	if i := strings.IndexByte(s, '^'); i >= 0 {
		v, e = s[:i], s[i+1:]
	}
	value, err = strconv.Atoi(v)
	if err != nil || value <= 0 {
		return 0, 0, fmt.Errorf("pattern: bad run value %q", s)
	}
	exp, err = strconv.Atoi(e)
	if err != nil || exp <= 0 {
		return 0, 0, fmt.Errorf("pattern: bad run exponent %q", s)
	}
	return value, exp, nil
}
