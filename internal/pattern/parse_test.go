package pattern

import (
	"testing"
	"testing/quick"
)

func TestParseForms(t *testing.T) {
	cases := []struct {
		in   string
		want Triplet
	}{
		{"-", Empty},
		{"", Empty},
		{"1^6", Triplet{Eta: 6, Kappa: 1, Rho: 1}},
		{"1", Triplet{Eta: 1, Kappa: 1, Rho: 1}},
		{"1,2...5", Triplet{Eta: 1, Kappa: 5, Rho: 1}},
		{"1^2,2^2...4^2", Triplet{Eta: 2, Kappa: 4, Rho: 1}},
		{"(1^2,2^2...4^2)^3", Triplet{Eta: 2, Kappa: 4, Rho: 3}},
		{"(1,2...4)^3", Triplet{Eta: 1, Kappa: 4, Rho: 3}},
		{"(1^5)^2", Triplet{Eta: 10, Kappa: 1, Rho: 1}}, // line canonicalized
		{"1^2,2^2,3^2...9^2", Triplet{Eta: 2, Kappa: 9, Rho: 1}},
		{" 1^2 , 2^2 ... 4^2 ", Triplet{Eta: 2, Kappa: 4, Rho: 1}},
		{"1,2…3", Triplet{Eta: 1, Kappa: 3, Rho: 1}}, // unicode ellipsis
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"2^3",           // single run not of 1s
		"1,3...5",       // head skips a value
		"1^2,2^3...5^2", // ragged exponents
		"1^2,2^2...5^3", // final exponent differs
		"1,2...2",       // top not beyond head
		"(1,2...4",      // unbalanced paren
		"(1,2...4)",     // missing ^rho
		"(1,2...4)^0",   // zero repeat
		"(1,2...4)^x",   // non-numeric repeat
		"1,2...4...6",   // multiple ellipses
		"0^2",           // zero value
		"1^0",           // zero exponent
		"a,b...c",       // garbage
	}
	for _, s := range bad {
		if tr, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted as %v", s, tr)
		}
	}
}

// Property: Parse is a left inverse of String for all triplets.
func TestParseStringRoundTripProperty(t *testing.T) {
	f := func(e, k, r uint8) bool {
		tr := Triplet{Eta: int(e%6) + 1, Kappa: int(k%6) + 1, Rho: int(r%5) + 1}
		got, err := Parse(tr.String())
		return err == nil && Equal(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse(s).Expand() == the sequence Compress would accept.
func TestParseAgreesWithCompressProperty(t *testing.T) {
	f := func(e, k, r uint8) bool {
		tr := Triplet{Eta: int(e%4) + 1, Kappa: int(k%4) + 1, Rho: int(r%3) + 1}
		parsed, err := Parse(tr.String())
		if err != nil {
			return false
		}
		compressed, ok := Compress(tr.Expand())
		return ok && Equal(parsed, compressed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
