package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"seculator/internal/sim"
	"seculator/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{Channels: 0, BlocksPerCycle: 1}).Validate(); err == nil {
		t.Fatal("zero channels accepted")
	}
	if err := (Config{Channels: 1, BlocksPerCycle: 0}).Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func mustNew(t *testing.T, cfg Config) *DRAM {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return d
}

func TestServiceTime(t *testing.T) {
	d := mustNew(t, Config{Channels: 2, LatencyCycles: 100, BlocksPerCycle: 0.25})
	if d.ServiceTime(0) != 0 {
		t.Fatal("zero blocks should be free")
	}
	// 1 block at 0.25 blocks/cycle -> 4 transfer cycles + 100 latency.
	if got := d.ServiceTime(1); got != 104 {
		t.Fatalf("ServiceTime(1) = %d, want 104", got)
	}
	// 10 blocks -> 40 transfer cycles.
	if got := d.ServiceTime(10); got != 140 {
		t.Fatalf("ServiceTime(10) = %d, want 140", got)
	}
}

func TestServiceTimeMonotoneProperty(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	f := func(a, b uint8) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return d.ServiceTime(x) <= d.ServiceTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordTraffic(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	d.Record(sim.Read, sim.DataTraffic, 10)
	d.Record(sim.Write, sim.DataTraffic, 5)
	d.Record(sim.Read, sim.MACTraffic, 3)
	d.Record(sim.Read, sim.MACTraffic, 0) // no-op
	tr := d.Traffic()
	if tr.Total() != 18 {
		t.Fatalf("Total = %d", tr.Total())
	}
	if tr.ByKind(sim.DataTraffic) != 15 || tr.ByKind(sim.MACTraffic) != 3 {
		t.Fatalf("per-kind wrong: %+v", tr)
	}
	if tr.Overhead() != 3 {
		t.Fatalf("Overhead = %d", tr.Overhead())
	}
	d.ResetTraffic()
	if d.Traffic().Total() != 0 {
		t.Fatal("ResetTraffic failed")
	}
}

func payload(seed byte) []byte {
	b := make([]byte, tensor.BlockBytes)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestBackingStoreRoundTrip(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	p := payload(3)
	d.WriteBlock(42, p, sim.DataTraffic)
	got := make([]byte, tensor.BlockBytes)
	d.ReadBlock(42, got, sim.DataTraffic)
	if !bytes.Equal(got, p) {
		t.Fatal("store round trip failed")
	}
	// Unwritten lines read as zero.
	d.ReadBlock(99, got, sim.DataTraffic)
	if !bytes.Equal(got, make([]byte, tensor.BlockBytes)) {
		t.Fatal("unwritten line not zero")
	}
	if d.Lines() != 1 {
		t.Fatalf("Lines = %d", d.Lines())
	}
	tr := d.Traffic()
	if tr.WriteBlocks[sim.DataTraffic] != 1 || tr.ReadBlocks[sim.DataTraffic] != 2 {
		t.Fatalf("traffic accounting: %+v", tr)
	}
}

func TestWriteBlockCopies(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	p := payload(1)
	d.WriteBlock(1, p, sim.DataTraffic)
	p[0] ^= 0xFF // caller mutates its buffer afterwards
	got := make([]byte, tensor.BlockBytes)
	d.ReadBlock(1, got, sim.DataTraffic)
	if got[0] == p[0] {
		t.Fatal("WriteBlock must copy the payload")
	}
}

func TestBadSizesPanic(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	for _, f := range []func(){
		func() { d.WriteBlock(0, make([]byte, 8), sim.DataTraffic) },
		func() { d.ReadBlock(0, make([]byte, 8), sim.DataTraffic) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("short buffer should panic")
				}
			}()
			f()
		}()
	}
}

func TestAttackerPrimitives(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	d.WriteBlock(1, payload(1), sim.DataTraffic)
	d.WriteBlock(2, payload(2), sim.DataTraffic)

	// Tamper.
	if !d.Tamper(1, 5, 0xFF) {
		t.Fatal("Tamper failed")
	}
	if d.Tamper(99, 0, 1) {
		t.Fatal("Tamper on missing line should fail")
	}
	if d.Tamper(1, -1, 1) || d.Tamper(1, 64, 1) {
		t.Fatal("Tamper out of range should fail")
	}
	if d.Peek(1)[5] != payload(1)[5]^0xFF {
		t.Fatal("Tamper did not flip the byte")
	}

	// Swap.
	before1, _ := d.Snapshot(1)
	before2, _ := d.Snapshot(2)
	if !d.Swap(1, 2) {
		t.Fatal("Swap failed")
	}
	if !bytes.Equal(d.Peek(1), before2) || !bytes.Equal(d.Peek(2), before1) {
		t.Fatal("Swap did not exchange payloads")
	}
	if d.Swap(1, 99) {
		t.Fatal("Swap with missing line should fail")
	}

	// Replay: snapshot, overwrite, restore.
	snap, ok := d.Snapshot(1)
	if !ok {
		t.Fatal("Snapshot failed")
	}
	d.WriteBlock(1, payload(9), sim.DataTraffic)
	if !d.Restore(1, snap) {
		t.Fatal("Restore failed")
	}
	if !bytes.Equal(d.Peek(1), snap) {
		t.Fatal("Restore did not replay the old payload")
	}
	if _, ok := d.Snapshot(12345); ok {
		t.Fatal("Snapshot of missing line should fail")
	}
	if d.Restore(1, make([]byte, 8)) {
		t.Fatal("Restore with wrong size should fail")
	}
}

func TestDefaultConfigShape(t *testing.T) {
	c := DefaultConfig()
	if c.Channels != 2 || c.LatencyCycles != 100 {
		t.Fatalf("default config diverges from Table 1: %+v", c)
	}
}

func TestRowBufferGeometry(t *testing.T) {
	if _, err := NewRowBuffer(0, 1, 1); err == nil {
		t.Fatal("zero channels accepted")
	}
	m := mustRowBuffer(t, 2, 4, 8)
	// Sequential blocks within a row: one miss, then hits.
	for i := uint64(0); i < 8; i++ {
		m.Access(i)
	}
	hits, misses := m.Stats()
	if misses != 1 || hits != 7 {
		t.Fatalf("sequential: hits=%d misses=%d", hits, misses)
	}
	if m.HitRate() != 7.0/8.0 {
		t.Fatalf("hit rate = %g", m.HitRate())
	}
	if c := m.Cycles(10, 38); c != 7*10+38 {
		t.Fatalf("cycles = %d", c)
	}
	m.Reset()
	if h, ms := m.Stats(); h != 0 || ms != 0 {
		t.Fatal("Reset failed")
	}
}

func TestRowBufferRejectsBadGeometry(t *testing.T) {
	if _, err := NewRowBuffer(0, 0, 0); err == nil {
		t.Fatal("NewRowBuffer should reject degenerate geometry")
	}
}

func mustRowBuffer(t *testing.T, channels, banks, rowBlocks int) *RowBufferModel {
	t.Helper()
	m, err := NewRowBuffer(channels, banks, rowBlocks)
	if err != nil {
		t.Fatalf("NewRowBuffer(%d, %d, %d): %v", channels, banks, rowBlocks, err)
	}
	return m
}

// Interleaving a second, far-away stream with a sequential one destroys
// row locality when both map to the same bank row group.
func TestRowBufferInterleavingHurts(t *testing.T) {
	seq := mustRowBuffer(t, 1, 1, 8)
	for i := uint64(0); i < 64; i++ {
		seq.Access(i)
	}
	mixed := mustRowBuffer(t, 1, 1, 8)
	for i := uint64(0); i < 64; i++ {
		mixed.Access(i)
		mixed.Access(1 << 20) // metadata detour to a distant row
	}
	if mixed.HitRate() >= seq.HitRate() {
		t.Fatalf("interleaving did not hurt: %.3f >= %.3f", mixed.HitRate(), seq.HitRate())
	}
}

func TestRowBufferAccessRange(t *testing.T) {
	m := mustRowBuffer(t, 2, 2, 4)
	m.AccessRange(0, 16)
	hits, misses := m.Stats()
	if hits+misses != 16 {
		t.Fatalf("accesses = %d", hits+misses)
	}
	// 16 blocks over 4-block rows: 4 row openings.
	if misses != 4 {
		t.Fatalf("misses = %d, want 4", misses)
	}
}

// Reserve pre-allocates line buffers for sharded execution, but must be
// invisible to the attacker/test surface: a reserved line "exists" only
// once something is written to it.
func TestReserveInvisibleUntilWritten(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	payload := make([]byte, tensor.BlockBytes)
	payload[0] = 0xAB
	d.WriteBlock(3, payload, sim.DataTraffic)

	d.Reserve(8)
	if d.Lines() != 1 {
		t.Fatalf("Lines after Reserve = %d, want 1", d.Lines())
	}
	if d.Peek(5) != nil {
		t.Fatal("Peek sees a reserved-but-unwritten line")
	}
	if got := d.Peek(3); got == nil || got[0] != 0xAB {
		t.Fatal("Peek lost the pre-reservation line")
	}
	if d.Tamper(5, 0, 0xFF) {
		t.Fatal("Tamper succeeded on a reserved-but-unwritten line")
	}
	if _, ok := d.Snapshot(5); ok {
		t.Fatal("Snapshot succeeded on a reserved-but-unwritten line")
	}
	if d.Restore(5, payload) {
		t.Fatal("Restore succeeded on a reserved-but-unwritten line")
	}
	if d.Swap(3, 5) {
		t.Fatal("Swap succeeded with a reserved-but-unwritten line")
	}

	// Writing a reserved line makes it fully visible.
	d.WriteBlockQuiet(5, payload)
	if d.Lines() != 2 {
		t.Fatalf("Lines after write = %d, want 2", d.Lines())
	}
	if got := d.Peek(5); got == nil || got[0] != 0xAB {
		t.Fatal("written reserved line not visible to Peek")
	}
	if !d.Tamper(5, 0, 0x01) || !d.Swap(3, 5) {
		t.Fatal("attacker primitives blocked on a written line")
	}

	// Reads round-trip through the reserved slab.
	dst := make([]byte, tensor.BlockBytes)
	d.ReadBlockQuiet(3, dst)
	if dst[0] != 0xAB^0x01 {
		t.Fatalf("swapped+tampered read = %#x", dst[0])
	}
}
