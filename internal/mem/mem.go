// Package mem models the off-chip DRAM of the simulated system: a
// dual-channel DDR4 memory with a fixed access latency (Table 1: 100 NPU
// cycles) and a finite per-channel block bandwidth. It also owns the
// byte-addressable backing store that the functional security layer
// encrypts into, so attack tests can mutate "DRAM" contents directly.
//
// Timing model: a burst of n blocks issued together overlaps its requests
// across channels and banks, so it completes in
//
//	latency + ceil(n / blocksPerCycle)
//
// cycles, where blocksPerCycle is the aggregate channel bandwidth expressed
// in 64-byte blocks per NPU cycle. Traffic is accounted per purpose
// (sim.Traffic) so experiments can attribute overhead to MACs, counters,
// Merkle nodes, or metadata tables.
//
// Error discipline: constructors return errors for bad configuration; the
// package never panics on a reachable data path. Panics are reserved for
// unreachable programmer-error invariants.
package mem

import (
	"fmt"
	"sort"

	"seculator/internal/sim"
	"seculator/internal/tensor"
)

// Config parameterizes the DRAM model.
type Config struct {
	Channels       int        // independent channels (Table 1: 2)
	LatencyCycles  sim.Cycles // closed-row access latency in NPU cycles (Table 1: 100)
	BlocksPerCycle float64    // aggregate 64-byte blocks transferable per NPU cycle
}

// DefaultConfig matches Table 1: dual-channel DDR4 under a 2.75 GHz NPU.
// One DDR4-2400 channel moves 19.2 GB/s; two channels at 2.75 GHz give
// 38.4e9 / 64 / 2.75e9 ≈ 0.22 blocks per NPU cycle.
func DefaultConfig() Config {
	return Config{Channels: 2, LatencyCycles: 100, BlocksPerCycle: 0.22}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels <= 0 {
		return fmt.Errorf("mem: channels must be positive, got %d", c.Channels)
	}
	if c.BlocksPerCycle <= 0 {
		return fmt.Errorf("mem: bandwidth must be positive, got %g", c.BlocksPerCycle)
	}
	return nil
}

// TrafficStats counts blocks moved per purpose and direction.
type TrafficStats struct {
	ReadBlocks  [6]uint64 // indexed by sim.Traffic
	WriteBlocks [6]uint64
}

// Total returns all blocks moved.
func (t TrafficStats) Total() uint64 {
	var n uint64
	for i := range t.ReadBlocks {
		n += t.ReadBlocks[i] + t.WriteBlocks[i]
	}
	return n
}

// ByKind returns read+write blocks of one traffic class.
func (t TrafficStats) ByKind(k sim.Traffic) uint64 {
	return t.ReadBlocks[k] + t.WriteBlocks[k]
}

// Overhead returns all non-data blocks.
func (t TrafficStats) Overhead() uint64 { return t.Total() - t.ByKind(sim.DataTraffic) }

// Injector intercepts block transfers on the DRAM pins — the attachment
// point for fault-injection campaigns (package fault). OnRead runs after the
// stored payload is copied into the destination buffer and may mutate it in
// place: a read-path fault, transient unless the injector repeats it.
// OnWrite runs on the payload about to be stored and may mutate it: a
// write-path fault, persistent until the line is rewritten. Both observe
// every functional transfer, including host loads.
type Injector interface {
	OnRead(lineAddr uint64, data []byte)
	OnWrite(lineAddr uint64, data []byte)
}

// DRAM is the memory model plus functional backing store.
type DRAM struct {
	cfg      Config
	traffic  TrafficStats
	store    map[uint64][]byte // line address -> 64-byte payload
	injector Injector

	// written marks which reserved lines have actually been stored to.
	// Reserve pre-allocates line buffers so sharded execution never
	// mutates the store map, but reservation must stay invisible to the
	// attacker/test surface (Peek, Snapshot, Tamper, Swap, Restore,
	// Lines): a reserved line "exists" only once written. nil without
	// Reserve. Concurrent writes touch distinct elements (shards operate
	// on distinct addresses by contract), so no synchronization is needed.
	written []bool
}

// New builds a DRAM with the given config.
func New(cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DRAM{cfg: cfg, store: make(map[uint64][]byte)}, nil
}

// Config returns the model parameters.
func (d *DRAM) Config() Config { return d.cfg }

// SetInjector installs (or, with nil, removes) a fault injector on the
// functional read/write paths.
func (d *DRAM) SetInjector(i Injector) { d.injector = i }

// ServiceTime returns the cycles to serve a burst of n blocks.
func (d *DRAM) ServiceTime(n int) sim.Cycles {
	if n <= 0 {
		return 0
	}
	transfer := sim.Cycles(float64(n)/d.cfg.BlocksPerCycle + 0.999999)
	return d.cfg.LatencyCycles.Add(transfer)
}

// Record accounts a transfer of n blocks of the given purpose and
// direction, without touching the backing store (timing-only path).
func (d *DRAM) Record(kind sim.AccessKind, purpose sim.Traffic, n int) {
	if n <= 0 {
		return
	}
	if kind == sim.Read {
		d.traffic.ReadBlocks[purpose] += uint64(n)
	} else {
		d.traffic.WriteBlocks[purpose] += uint64(n)
	}
}

// Traffic returns a snapshot of the traffic counters.
func (d *DRAM) Traffic() TrafficStats { return d.traffic }

// ResetTraffic zeroes the counters.
func (d *DRAM) ResetTraffic() { d.traffic = TrafficStats{} }

// WriteBlock stores a 64-byte payload at the line address and accounts the
// traffic. The payload is copied.
func (d *DRAM) WriteBlock(lineAddr uint64, payload []byte, purpose sim.Traffic) {
	d.WriteBlockQuiet(lineAddr, payload)
	d.Record(sim.Write, purpose, 1)
}

// ReadBlock fetches the 64-byte payload at the line address into dst and
// accounts the traffic. Reading a never-written line yields zeros.
func (d *DRAM) ReadBlock(lineAddr uint64, dst []byte, purpose sim.Traffic) {
	d.ReadBlockQuiet(lineAddr, dst)
	d.Record(sim.Read, purpose, 1)
}

// Reserve pre-allocates backing lines [0, n), carved out of one contiguous
// slab, leaving already-written lines untouched. The secure executor calls
// it before sharding work across goroutines: with every line it will ever
// touch pre-allocated, the store map is never mutated during parallel
// execution — reads and writes only copy through existing, disjoint
// per-line buffers, which is what makes concurrent WriteBlockQuiet /
// ReadBlockQuiet calls at distinct addresses safe. The attacker/test view
// is unaffected: a reserved line stays "nonexistent" until written.
func (d *DRAM) Reserve(n uint64) {
	if n == 0 {
		return
	}
	old := uint64(len(d.written))
	if old < n {
		grown := make([]bool, n)
		copy(grown, d.written)
		d.written = grown
	}
	// Lines stored before the bitmap covered them were genuinely written
	// (pre-reservation WriteBlockQuiet traffic) and keep that status. Lines
	// the bitmap already tracked keep whatever it says — in particular a
	// pooled, Reset DRAM has its zeroed lines stay nonexistent for the
	// attacker surface rather than being resurrected by re-reservation.
	for a := range d.store {
		if a >= old && a < n {
			d.written[a] = true
		}
	}
	slab := make([]byte, n*uint64(tensor.BlockBytes))
	for a := uint64(0); a < n; a++ {
		if _, ok := d.store[a]; !ok {
			lo := a * uint64(tensor.BlockBytes)
			hi := lo + uint64(tensor.BlockBytes)
			d.store[a] = slab[lo:hi:hi]
		}
	}
}

// Reset returns the DRAM to its post-New state while keeping the backing
// slab, the store map, and the written bitmap allocated — the reuse
// primitive behind the secure executor's pooled run state. Every stored
// payload is zeroed (a pooled DRAM must not leak one run's ciphertext into
// the next run's address space), every line reverts to "nonexistent" for
// the attacker/test surface, the traffic counters clear, and any installed
// injector is removed. Lines beyond the written bitmap's reach cannot be
// hidden by it, so they are dropped outright.
func (d *DRAM) Reset() {
	d.traffic = TrafficStats{}
	d.injector = nil
	for a, buf := range d.store {
		if a >= uint64(len(d.written)) {
			delete(d.store, a)
			continue
		}
		clear(buf)
	}
	clear(d.written)
}

// markWritten records that a reserved line now holds real data.
func (d *DRAM) markWritten(lineAddr uint64) {
	if d.written != nil && lineAddr < uint64(len(d.written)) {
		d.written[lineAddr] = true
	}
}

// lineExists reports whether a line holds written data (reserved-only
// lines do not count).
func (d *DRAM) lineExists(lineAddr uint64) bool {
	if d.written != nil && lineAddr < uint64(len(d.written)) && !d.written[lineAddr] {
		return false
	}
	_, ok := d.store[lineAddr]
	return ok
}

// WriteBlockQuiet is WriteBlock without traffic accounting: shard workers
// use it and count transfers locally, merging them into the shared counters
// via Record on the main goroutine (the counters themselves are not
// goroutine-safe). The injector still observes the transfer; serializing
// injector access across shards is the caller's job.
func (d *DRAM) WriteBlockQuiet(lineAddr uint64, payload []byte) {
	if len(payload) != tensor.BlockBytes {
		panic(fmt.Sprintf("mem: payload must be %d bytes, got %d", tensor.BlockBytes, len(payload)))
	}
	buf, ok := d.store[lineAddr]
	if !ok {
		buf = make([]byte, tensor.BlockBytes)
		d.store[lineAddr] = buf
	}
	copy(buf, payload)
	d.markWritten(lineAddr)
	if d.injector != nil {
		d.injector.OnWrite(lineAddr, buf)
	}
}

// ReadBlockQuiet is ReadBlock without traffic accounting (see
// WriteBlockQuiet for the sharding contract).
func (d *DRAM) ReadBlockQuiet(lineAddr uint64, dst []byte) {
	if len(dst) != tensor.BlockBytes {
		panic(fmt.Sprintf("mem: dst must be %d bytes, got %d", tensor.BlockBytes, len(dst)))
	}
	if buf, ok := d.store[lineAddr]; ok {
		copy(dst, buf)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	if d.injector != nil {
		d.injector.OnRead(lineAddr, dst)
	}
}

// Peek returns the stored payload without traffic accounting (attacker /
// test access). The returned slice aliases the store; mutating it mutates
// DRAM, which is exactly what a physical attacker does.
func (d *DRAM) Peek(lineAddr uint64) []byte {
	if !d.lineExists(lineAddr) {
		return nil
	}
	return d.store[lineAddr]
}

// Tamper XORs mask into the byte at off within the stored line (attacker
// primitive). It reports whether the line existed.
func (d *DRAM) Tamper(lineAddr uint64, off int, mask byte) bool {
	buf, ok := d.store[lineAddr]
	if !ok || !d.lineExists(lineAddr) || off < 0 || off >= len(buf) {
		return false
	}
	buf[off] ^= mask
	return true
}

// Swap exchanges the payloads of two lines (splicing attack primitive).
func (d *DRAM) Swap(a, b uint64) bool {
	pa, oka := d.store[a]
	pb, okb := d.store[b]
	if !oka || !okb || !d.lineExists(a) || !d.lineExists(b) {
		return false
	}
	for i := range pa {
		pa[i], pb[i] = pb[i], pa[i]
	}
	return true
}

// Snapshot copies the current payload of a line (replay attack primitive:
// capture now, restore later with Restore).
func (d *DRAM) Snapshot(lineAddr uint64) ([]byte, bool) {
	buf, ok := d.store[lineAddr]
	if !ok || !d.lineExists(lineAddr) {
		return nil, false
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	return cp, true
}

// Restore overwrites a line with a previously captured payload.
func (d *DRAM) Restore(lineAddr uint64, payload []byte) bool {
	buf, ok := d.store[lineAddr]
	if !ok || !d.lineExists(lineAddr) || len(payload) != len(buf) {
		return false
	}
	copy(buf, payload)
	return true
}

// ForEachLine visits every written line in ascending address order with its
// stored payload (reserved-but-never-written lines are skipped, matching
// Peek's attacker view). The payload slice aliases the store, like Peek's;
// callers that only hash or compare must not retain it. The deterministic
// order makes whole-memory digests comparable across runs — the conformance
// harness uses it to assert ciphertext bit-identity across worker counts.
func (d *DRAM) ForEachLine(fn func(lineAddr uint64, data []byte)) {
	addrs := make([]uint64, 0, len(d.store))
	for a := range d.store {
		if d.lineExists(a) {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fn(a, d.store[a])
	}
}

// Lines returns the number of distinct lines ever written (reserved but
// never-written lines do not count, so the figure matches a lazily
// allocated run exactly).
func (d *DRAM) Lines() int {
	if d.written == nil {
		return len(d.store)
	}
	n := 0
	for a := range d.store {
		if d.lineExists(a) {
			n++
		}
	}
	return n
}
