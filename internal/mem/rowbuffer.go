package mem

import (
	"fmt"

	"seculator/internal/sim"
)

// RowBufferModel is an open-page DRAM bank model: each (channel, bank)
// keeps one row open, a hit streams from the row buffer, a miss pays
// precharge + activate. It quantifies the paper's observation that
// "frequently accessing secure memory to read VNs and MACs has a high
// overhead": metadata lines live in different rows than the tensor data
// they interrupt, so interleaving them destroys the row locality of
// streaming tiles — a penalty on top of the raw block counts the
// bandwidth model charges.
type RowBufferModel struct {
	channels  int
	banks     int
	rowBlocks int // 64-byte blocks per DRAM row

	open   [][]int64 // open row per (channel, bank); -1 = closed
	hits   uint64
	misses uint64
}

// NewRowBuffer builds the model. A typical DDR4 geometry is 2 channels,
// 16 banks, 128 blocks (8 KB) per row.
func NewRowBuffer(channels, banks, rowBlocks int) (*RowBufferModel, error) {
	if channels <= 0 || banks <= 0 || rowBlocks <= 0 {
		return nil, fmt.Errorf("mem: row-buffer geometry must be positive: ch=%d banks=%d row=%d",
			channels, banks, rowBlocks)
	}
	m := &RowBufferModel{channels: channels, banks: banks, rowBlocks: rowBlocks}
	m.open = make([][]int64, channels)
	for c := range m.open {
		m.open[c] = make([]int64, banks)
		for b := range m.open[c] {
			m.open[c][b] = -1
		}
	}
	return m, nil
}

// Access touches one block address and reports whether it hit the open
// row. Address mapping: row-interleaved across channels, then banks —
// consecutive rows land on different channels so streams use both.
func (m *RowBufferModel) Access(blockAddr uint64) bool {
	row := int64(blockAddr / uint64(m.rowBlocks))
	ch := int(row) % m.channels
	bank := (int(row) / m.channels) % m.banks
	if m.open[ch][bank] == row {
		m.hits++
		return true
	}
	m.open[ch][bank] = row
	m.misses++
	return false
}

// AccessRange touches a contiguous block range.
func (m *RowBufferModel) AccessRange(start uint64, n int) {
	for i := 0; i < n; i++ {
		m.Access(start + uint64(i))
	}
}

// Stats returns the hit/miss counts.
func (m *RowBufferModel) Stats() (hits, misses uint64) { return m.hits, m.misses }

// HitRate returns hits / accesses.
func (m *RowBufferModel) HitRate() float64 {
	return sim.Ratio(m.hits, m.hits+m.misses)
}

// Cycles converts the access history into DRAM time under per-access
// hit/miss service costs (e.g. 10 cycles for a row hit, 38 for
// precharge+activate+access at DDR4 timings scaled to the NPU clock).
func (m *RowBufferModel) Cycles(hitCycles, missCycles sim.Cycles) sim.Cycles {
	return sim.Cycles(m.hits)*hitCycles + sim.Cycles(m.misses)*missCycles
}

// Reset clears the model's state and statistics.
func (m *RowBufferModel) Reset() {
	for c := range m.open {
		for b := range m.open[c] {
			m.open[c][b] = -1
		}
	}
	m.hits, m.misses = 0, 0
}
