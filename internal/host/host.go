// Package host models the CPU side of the system (Section 6.1): the host
// delivers per-layer execution commands to the NPU over a PCIe link
// protected by a shared session key. A command carries everything the
// paper says the accelerator needs to run a layer without further host
// involvement — the layer geometry, the data-region base addresses, the
// master-equation triplet ⟨η, κ, ρ⟩ for the VN generator, and the golden
// digests for host-written data — authenticated with an HMAC-style tag and
// a strictly increasing sequence number, so command tampering and command
// replay are both rejected (a rejected command is the "security breach →
// reboot" path of Figure 6).
package host

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"seculator/internal/mac"
	"seculator/internal/pattern"
	"seculator/internal/workload"
)

// ErrChannel is returned for any authentication failure on the command
// channel: tampered payloads, replayed or reordered sequence numbers, or
// tags under the wrong session key.
var ErrChannel = errors.New("host: command channel authentication failed")

// Command is one "run layer" order. All fields are what Section 6 says the
// host communicates: the layer to execute, where its tensors live, the VN
// triplet, and golden digests for data the host wrote itself.
type Command struct {
	Seq         uint64 // strictly increasing per session
	LayerIndex  uint32
	Layer       workload.Layer
	Triplet     pattern.Triplet
	IfmapBase   uint64
	OfmapBase   uint64
	WeightBase  uint64
	GoldenInput mac.Digest // zero unless the host wrote this layer's inputs
	GoldenWts   mac.Digest
}

// Packet is the wire form of a command: an encoded payload plus its tag.
type Packet struct {
	Payload []byte
	Tag     [32]byte
}

// encode serializes the command deterministically.
func (c *Command) encode() []byte {
	buf := make([]byte, 0, 160)
	u64 := func(v uint64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	i64 := func(v int) { u64(uint64(int64(v))) }
	u64(c.Seq)
	u64(uint64(c.LayerIndex))
	buf = append(buf, byte(c.Layer.Type))
	i64(c.Layer.C)
	i64(c.Layer.H)
	i64(c.Layer.W)
	i64(c.Layer.K)
	i64(c.Layer.R)
	i64(c.Layer.S)
	i64(c.Layer.Stride)
	if c.Layer.Valid {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	i64(c.Triplet.Eta)
	i64(c.Triplet.Kappa)
	i64(c.Triplet.Rho)
	u64(c.IfmapBase)
	u64(c.OfmapBase)
	u64(c.WeightBase)
	buf = append(buf, c.GoldenInput[:]...)
	buf = append(buf, c.GoldenWts[:]...)
	return buf
}

// decode is the inverse of encode.
func decode(payload []byte) (Command, error) {
	const fixed = 8 + 8 + 1 + 7*8 + 1 + 3*8 + 3*8 + 32 + 32
	if len(payload) != fixed {
		return Command{}, fmt.Errorf("host: malformed command payload (%d bytes)", len(payload))
	}
	var c Command
	off := 0
	u64 := func() uint64 {
		v := binary.BigEndian.Uint64(payload[off:])
		off += 8
		return v
	}
	i := func() int { return int(int64(u64())) }
	c.Seq = u64()
	c.LayerIndex = uint32(u64())
	c.Layer.Type = workload.LayerType(payload[off])
	off++
	c.Layer.C = i()
	c.Layer.H = i()
	c.Layer.W = i()
	c.Layer.K = i()
	c.Layer.R = i()
	c.Layer.S = i()
	c.Layer.Stride = i()
	c.Layer.Valid = payload[off] == 1
	off++
	c.Triplet.Eta = i()
	c.Triplet.Kappa = i()
	c.Triplet.Rho = i()
	c.IfmapBase = u64()
	c.OfmapBase = u64()
	c.WeightBase = u64()
	copy(c.GoldenInput[:], payload[off:off+32])
	off += 32
	copy(c.GoldenWts[:], payload[off:off+32])
	return c, nil
}

// Controller is the host endpoint: it signs commands under the session key
// with increasing sequence numbers.
type Controller struct {
	key []byte
	seq uint64
}

// NewController creates a host controller for a session key.
func NewController(sessionKey []byte) *Controller {
	return NewControllerAt(sessionKey, 0)
}

// NewControllerAt creates a host controller whose next issued command gets
// sequence number lastSeq+1 — the restore path for a session whose channel
// state survived a snapshot: sequence numbers keep rising monotonically
// across the restart, so replay protection spans the session's whole life,
// not one process incarnation.
func NewControllerAt(sessionKey []byte, lastSeq uint64) *Controller {
	k := make([]byte, len(sessionKey))
	copy(k, sessionKey)
	return &Controller{key: k, seq: lastSeq}
}

// LastSeq returns the sequence number of the most recently issued command
// (the snapshot point for session export).
func (h *Controller) LastSeq() uint64 { return h.seq }

// Issue builds the authenticated packet for the next command. The sequence
// number is assigned here; the caller's Seq field is overwritten.
func (h *Controller) Issue(c Command) Packet {
	h.seq++
	c.Seq = h.seq
	payload := c.encode()
	return Packet{Payload: payload, Tag: tag(h.key, payload)}
}

// Endpoint is the NPU side: it verifies tags and enforces strictly
// increasing sequence numbers.
type Endpoint struct {
	key     []byte
	lastSeq uint64
	breach  bool
}

// NewEndpoint creates the NPU receiver for a session key.
func NewEndpoint(sessionKey []byte) *Endpoint {
	return NewEndpointAt(sessionKey, 0)
}

// NewEndpointAt creates the NPU receiver with its replay window already
// advanced past lastSeq — the counterpart of NewControllerAt on restore: a
// replayed pre-snapshot command is rejected by the restored endpoint exactly
// as the original would have rejected it.
func NewEndpointAt(sessionKey []byte, lastSeq uint64) *Endpoint {
	k := make([]byte, len(sessionKey))
	copy(k, sessionKey)
	return &Endpoint{key: k, lastSeq: lastSeq}
}

// Receive authenticates and decodes a packet. Any failure latches the
// breach flag: per Figure 6, the NPU refuses all further work until reboot.
func (e *Endpoint) Receive(p Packet) (Command, error) {
	if e.breach {
		return Command{}, fmt.Errorf("%w: breached, reboot required", ErrChannel)
	}
	if !hmac.Equal(p.Tag[:], tagSlice(e.key, p.Payload)) {
		e.breach = true
		return Command{}, fmt.Errorf("%w: bad tag", ErrChannel)
	}
	c, err := decode(p.Payload)
	if err != nil {
		e.breach = true
		return Command{}, fmt.Errorf("%w: %v", ErrChannel, err)
	}
	if c.Seq <= e.lastSeq {
		e.breach = true
		return Command{}, fmt.Errorf("%w: sequence %d replayed (last %d)", ErrChannel, c.Seq, e.lastSeq)
	}
	e.lastSeq = c.Seq
	return c, nil
}

// Breached reports whether the endpoint has latched a security breach.
func (e *Endpoint) Breached() bool { return e.breach }

// Reboot clears the breach latch and the sequence window — the system
// reset of Figure 6. The session key would be renegotiated in a real
// system; here the caller supplies the new one.
func (e *Endpoint) Reboot(newSessionKey []byte) {
	e.key = make([]byte, len(newSessionKey))
	copy(e.key, newSessionKey)
	e.lastSeq = 0
	e.breach = false
}

func tag(key, payload []byte) [32]byte {
	var out [32]byte
	copy(out[:], tagSlice(key, payload))
	return out
}

func tagSlice(key, payload []byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write(payload)
	return h.Sum(nil)
}
