package host

import (
	"context"
	"errors"
	"testing"

	"seculator/internal/fault"
	"seculator/internal/nn"
	"seculator/internal/resilience"
	"seculator/internal/runner"
)

// flipOnce flips one bit on the very first DRAM read of the run — the first
// reads happen during layer-0 execution (host model loads are writes), so
// the fault lands mid-inference and must be repaired by the layer retry.
type flipOnce struct{ fired bool }

func (f *flipOnce) OnRead(_ uint64, data []byte) {
	if f.fired {
		return
	}
	data[0] ^= 0x80
	f.fired = true
}

func (f *flipOnce) OnWrite(uint64, []byte) {}

// TestRunSessionFunctionalRecovery: a full secure session carrying a
// functional model recovers a transient upset and surfaces the recovery
// statistics in the session result.
func TestRunSessionFunctionalRecovery(t *testing.T) {
	net := sessionNet()
	in, ws := nn.RandomModel(net, 21)
	golden, err := nn.ForwardNetwork(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	inj := &flipOnce{}
	res, err := RunSession(context.Background(), net, runner.DefaultConfig(), key, SessionOptions{
		Input: in, Weights: ws, Injector: inj,
	})
	if err != nil {
		t.Fatalf("session with one transient upset aborted: %v", err)
	}
	if !inj.fired {
		t.Fatal("injector never fired; test exercised nothing")
	}
	if res.Recovery.Recovered != 1 {
		t.Fatalf("recovery stats %+v, want one recovered layer", res.Recovery)
	}
	if res.Output == nil || !res.Output.Equal(golden) {
		t.Fatal("session output differs from the reference")
	}
	if res.Commands != len(net.Layers) || res.Cycles == 0 {
		t.Fatalf("timing side lost: %d commands, %d cycles", res.Commands, res.Cycles)
	}
}

// TestRunSessionPersistentFaultAborts: a stuck-at fault on every line
// defeats the retries; the session aborts with a typed integrity violation
// and the latched breach is still visible in the partial result.
func TestRunSessionPersistentFaultAborts(t *testing.T) {
	net := sessionNet()
	in, ws := nn.RandomModel(net, 22)
	res, err := RunSession(context.Background(), net, runner.DefaultConfig(), key, SessionOptions{
		Input: in, Weights: ws, Injector: fault.NewStuckAt(1, 0, 5),
	})
	if err == nil {
		t.Fatal("persistent fault completed without error")
	}
	var ie *resilience.IntegrityError
	var fe *resilience.FreshnessError
	if !errors.As(err, &ie) && !errors.As(err, &fe) {
		t.Fatalf("abort outside the taxonomy: %v", err)
	}
	if !res.Recovery.Breached {
		t.Fatalf("breach not latched in the surfaced stats: %+v", res.Recovery)
	}
}

// TestRunSessionChannelErrorTyped: the MITM abort carries the typed
// ChannelError of the resilience taxonomy, not just the sentinel.
func TestRunSessionChannelErrorTyped(t *testing.T) {
	mitm := func(layer int, p *Packet) {
		if layer == 0 {
			p.Tag[0] ^= 0x01
		}
	}
	_, err := RunSession(context.Background(), sessionNet(), runner.DefaultConfig(), key,
		SessionOptions{Intercept: mitm})
	var ce *resilience.ChannelError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want ChannelError", err)
	}
	if ce.Layer != 0 {
		t.Fatalf("violation attributed to layer %d, want 0", ce.Layer)
	}
	if resilience.Retryable(err) {
		t.Fatal("channel violation reported as retryable")
	}
}
