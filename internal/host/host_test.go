package host

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"seculator/internal/mac"
	"seculator/internal/pattern"
	"seculator/internal/runner"
	"seculator/internal/workload"
)

var key = []byte("session-key-0123")

func sampleCommand() Command {
	return Command{
		LayerIndex: 3,
		Layer: workload.Layer{
			Name: "conv", Type: workload.Conv,
			C: 64, H: 56, W: 56, K: 128, R: 3, S: 3, Stride: 2, Valid: true,
		},
		Triplet:    pattern.Triplet{Eta: 4, Kappa: 8, Rho: 16},
		IfmapBase:  0x1000,
		OfmapBase:  0x2000,
		WeightBase: 0x3000,
		GoldenWts:  mac.BlockMAC(mac.BlockRef{Secret: 1}, make([]byte, 64)),
	}
}

func TestIssueReceiveRoundTrip(t *testing.T) {
	h := NewController(key)
	e := NewEndpoint(key)
	want := sampleCommand()
	got, err := e.Receive(h.Issue(want))
	if err != nil {
		t.Fatal(err)
	}
	want.Seq = 1
	// Name is not on the wire; everything else must survive.
	want.Layer.Name = ""
	got.Layer.Name = ""
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Subsequent commands carry increasing sequence numbers.
	c2, err := e.Receive(h.Issue(sampleCommand()))
	if err != nil || c2.Seq != 2 {
		t.Fatalf("second command: seq=%d err=%v", c2.Seq, err)
	}
}

func TestTamperedPayloadRejected(t *testing.T) {
	h := NewController(key)
	e := NewEndpoint(key)
	p := h.Issue(sampleCommand())
	p.Payload[20] ^= 0x01 // change the layer geometry in flight
	if _, err := e.Receive(p); !errors.Is(err, ErrChannel) {
		t.Fatalf("tampered command accepted: %v", err)
	}
	if !e.Breached() {
		t.Fatal("breach not latched")
	}
	// After a breach, even valid commands are refused until reboot.
	h2 := NewController(key)
	if _, err := e.Receive(h2.Issue(sampleCommand())); !errors.Is(err, ErrChannel) {
		t.Fatal("breached endpoint accepted a command")
	}
	e.Reboot(key)
	if e.Breached() {
		t.Fatal("reboot did not clear the breach")
	}
	if _, err := e.Receive(h2.Issue(sampleCommand())); err != nil {
		t.Fatalf("post-reboot command refused: %v", err)
	}
}

func TestTamperedTagRejected(t *testing.T) {
	h := NewController(key)
	e := NewEndpoint(key)
	p := h.Issue(sampleCommand())
	p.Tag[0] ^= 0x80
	if _, err := e.Receive(p); !errors.Is(err, ErrChannel) {
		t.Fatal("bad tag accepted")
	}
}

func TestCommandReplayRejected(t *testing.T) {
	h := NewController(key)
	e := NewEndpoint(key)
	p := h.Issue(sampleCommand())
	if _, err := e.Receive(p); err != nil {
		t.Fatal(err)
	}
	// Replay the same authenticated packet: valid tag, stale sequence.
	if _, err := e.Receive(p); !errors.Is(err, ErrChannel) {
		t.Fatal("replayed command accepted")
	}
}

func TestWrongSessionKeyRejected(t *testing.T) {
	h := NewController([]byte("other-key"))
	e := NewEndpoint(key)
	if _, err := e.Receive(h.Issue(sampleCommand())); !errors.Is(err, ErrChannel) {
		t.Fatal("foreign-key command accepted")
	}
}

func TestMalformedPayloadRejected(t *testing.T) {
	e := NewEndpoint(key)
	short := []byte{1, 2, 3}
	p := Packet{Payload: short, Tag: tag(key, short)}
	if _, err := e.Receive(p); !errors.Is(err, ErrChannel) {
		t.Fatal("malformed payload accepted")
	}
}

// Property: encode/decode round-trips arbitrary commands.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seq uint64, li uint32, c, h, w, k, r, s, stride uint8,
		valid bool, eta, kappa, rho uint8, ib, ob, wb uint64) bool {
		cmd := Command{
			Seq:        seq,
			LayerIndex: li,
			Layer: workload.Layer{
				Type: workload.Conv,
				C:    int(c) + 1, H: int(h) + 1, W: int(w) + 1, K: int(k) + 1,
				R: int(r) + 1, S: int(s) + 1, Stride: int(stride) + 1, Valid: valid,
			},
			Triplet:    pattern.Triplet{Eta: int(eta) + 1, Kappa: int(kappa) + 1, Rho: int(rho) + 1},
			IfmapBase:  ib,
			OfmapBase:  ob,
			WeightBase: wb,
		}
		got, err := decode(cmd.encode())
		return err == nil && got == cmd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-byte payload mutation is rejected.
func TestAnyTamperRejectedProperty(t *testing.T) {
	h := NewController(key)
	base := h.Issue(sampleCommand())
	f := func(pos uint16, bit uint8) bool {
		e := NewEndpoint(key)
		p := Packet{Payload: append([]byte(nil), base.Payload...), Tag: base.Tag}
		p.Payload[int(pos)%len(p.Payload)] ^= 1 << (bit % 8)
		_, err := e.Receive(p)
		return errors.Is(err, ErrChannel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sessionNet() workload.Network {
	return workload.Network{
		Name: "sess",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 3, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: workload.Conv, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
		},
	}
}

func TestRunSessionHonest(t *testing.T) {
	res, err := RunSession(context.Background(), sessionNet(), runner.DefaultConfig(), key, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commands != 2 || res.Cycles == 0 {
		t.Fatalf("session result: %d commands, %d cycles", res.Commands, res.Cycles)
	}
}

func TestRunSessionMITMDetected(t *testing.T) {
	mitm := func(layer int, p *Packet) {
		if layer == 1 {
			p.Payload[30] ^= 0x40 // rewrite the commanded geometry in flight
		}
	}
	if _, err := RunSession(context.Background(), sessionNet(), runner.DefaultConfig(), key, SessionOptions{Intercept: mitm}); !errors.Is(err, ErrChannel) {
		t.Fatalf("MITM not detected: %v", err)
	}
}

func TestRunSessionRejectsBadNetwork(t *testing.T) {
	if _, err := RunSession(context.Background(), workload.Network{Name: "empty"}, runner.DefaultConfig(), key, SessionOptions{}); err == nil {
		t.Fatal("invalid network accepted")
	}
}
