package host

import (
	"context"
	"fmt"

	"seculator/internal/dataflow"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/protect"
	"seculator/internal/resilience"
	"seculator/internal/runner"
	"seculator/internal/sched"
	"seculator/internal/secure"
	"seculator/internal/workload"
)

// SessionResult is the outcome of a full secure session: the simulated
// execution plus the command-channel accounting, and — when the session
// carried a functional model — the decrypted output with its layer-level
// recovery statistics.
type SessionResult struct {
	runner.Result
	Commands int // authenticated layer commands delivered
	// LastSeq is the channel sequence number of the final command issued —
	// the continuation point a stateful session persists so replay
	// protection spans inferences (and snapshot/restore cycles).
	LastSeq uint64

	// Output is the functional inference result when Options.Input was
	// provided; nil for timing-only sessions.
	Output *nn.Tensor
	// Recovery reports detect-and-recover activity of the functional
	// execution (zero for timing-only sessions).
	Recovery resilience.Stats
}

// Intercept lets tests play the man in the middle on the PCIe link: it may
// mutate the packet in flight. A nil Intercept is the honest link.
type Intercept func(layer int, p *Packet)

// SessionOptions extends a secure session beyond the timing simulation.
type SessionOptions struct {
	// Intercept, when non-nil, is the PCIe man in the middle.
	Intercept Intercept

	// Input and Weights, when Input is non-nil, make the session run the
	// commanded network functionally through the encrypted Seculator path
	// after the command phase, with layer-level detect-and-recover.
	Input   *nn.Tensor
	Weights []*nn.Weights

	// Retry is the recovery policy of the functional execution; the zero
	// policy uses resilience.DefaultPolicy().
	Retry resilience.Policy

	// Injector, when non-nil, attaches a fault injector to the functional
	// execution's DRAM.
	Injector mem.Injector

	// Hook, when non-nil, interposes an attacker between the functional
	// execution's phases (see secure.Hook) — the DRAM-level counterpart to
	// Intercept's command-channel man in the middle. Tests and demos use it
	// to mount replay/splice attacks against a session's encrypted memory.
	Hook secure.Hook

	// Parallel is the intra-inference crypto worker count of the
	// functional execution: 0 uses the process default, 1 forces serial,
	// >1 shards block MACs and keystreams (bit-identical output either
	// way). Ignored for timing-only sessions.
	Parallel int

	// BaseSeq seeds the command channel's sequence window: the controller
	// issues BaseSeq+1 first and the endpoint rejects anything at or below
	// BaseSeq. A stateful session passes its last persisted sequence here so
	// the strictly-increasing guarantee holds across inferences and across
	// snapshot/restore, not just within one RunSession call.
	BaseSeq uint64

	// OnLayerMACs, when non-nil, observes the functional execution's XOR-MAC
	// registers at every layer boundary (see secure.Executor.OnLayerMACs) —
	// the final observation is the MAC-register state a session snapshot
	// carries.
	OnLayerMACs func(phase int, regs protect.RegisterState)

	// Residency, when non-nil, attaches the functional execution to a
	// pinned verify-once-then-resident weight cache
	// (secure.Executor.Residency); it is ignored — the full provisioning
	// path runs — unless it matches the session's config and weights and
	// no Hook/Injector is installed.
	Residency *secure.WeightResidency
}

// RunSession drives the complete Figure 6 flow for one inference on the
// Seculator design: the host maps every layer, derives its VN triplet, and
// issues an authenticated command over the session-key channel; the NPU
// endpoint authenticates each command and cross-checks the triplet against
// its own derivation from the commanded layer before executing. Any channel
// violation aborts the session with a typed resilience.ChannelError (reboot
// required). The returned result is the simulated execution of the
// commanded network, plus — when opts carries a model — the functional
// output and its recovery statistics. ctx cancels between layers; no panic
// escapes.
func RunSession(ctx context.Context, net workload.Network, cfg runner.Config, sessionKey []byte,
	opts SessionOptions) (res SessionResult, err error) {

	defer resilience.Recover(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return SessionResult{}, &resilience.ConfigError{Err: err}
	}
	if err := net.Validate(); err != nil {
		return SessionResult{}, &resilience.ConfigError{Err: err}
	}
	choices, err := sched.MapNetworkCached(net, cfg.NPU, cfg.DRAM)
	if err != nil {
		return SessionResult{}, err
	}
	ctrl := NewControllerAt(sessionKey, opts.BaseSeq)
	npu := NewEndpointAt(sessionKey, opts.BaseSeq)

	for i, c := range choices {
		if err := ctx.Err(); err != nil {
			return SessionResult{}, err
		}
		cmd := Command{
			LayerIndex: uint32(i),
			Layer:      c.Layer,
			Triplet:    dataflow.DeriveWrite(c.Mapping),
		}
		pkt := ctrl.Issue(cmd)
		if opts.Intercept != nil {
			opts.Intercept(i, &pkt)
		}
		rcvd, err := npu.Receive(pkt)
		if err != nil {
			return SessionResult{}, &resilience.ChannelError{
				Layer: i, Err: fmt.Errorf("host: layer %d command refused: %w", i, err),
			}
		}
		// The NPU sanity-checks the commanded triplet against its own
		// derivation for the commanded layer — a forged-but-authenticated
		// command from a compromised host library would diverge here.
		m, err := sched.MapCached(rcvd.Layer, cfg.NPU, cfg.DRAM)
		if err != nil {
			return SessionResult{}, fmt.Errorf("host: layer %d: commanded layer unmappable: %w", i, err)
		}
		if want := dataflow.DeriveWrite(m.Mapping); want != rcvd.Triplet {
			return SessionResult{}, &resilience.ChannelError{
				Layer: i,
				Err: fmt.Errorf("%w: layer %d triplet %v != derived %v",
					ErrChannel, i, rcvd.Triplet, want),
			}
		}
	}

	// The timing simulation is a pure function of (net, design, cfg); the
	// memoized path lets a serving host run many sessions of the same model
	// without re-simulating every request.
	r, err := runner.RunCached(ctx, net, protect.Seculator, cfg)
	if err != nil {
		return SessionResult{}, err
	}
	res = SessionResult{Result: r, Commands: len(choices), LastSeq: ctrl.LastSeq()}

	if opts.Input != nil {
		x := secure.NewExecutor()
		x.NPU, x.DRAM = cfg.NPU, cfg.DRAM
		x.Injector = opts.Injector
		x.AfterPhase = opts.Hook
		x.OnLayerMACs = opts.OnLayerMACs
		x.Parallel = opts.Parallel
		x.Residency = opts.Residency
		if opts.Retry != (resilience.Policy{}) {
			x.Retry = opts.Retry
		}
		fr, err := x.Run(ctx, net, opts.Input, opts.Weights)
		res.Recovery = fr.Recovery
		if err != nil {
			return res, fmt.Errorf("host: functional execution: %w", err)
		}
		res.Output = fr.Output
	}
	return res, nil
}
