package host

import (
	"fmt"

	"seculator/internal/dataflow"
	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/sched"
	"seculator/internal/workload"
)

// SessionResult is the outcome of a full secure session: the simulated
// execution plus the command-channel accounting.
type SessionResult struct {
	runner.Result
	Commands int // authenticated layer commands delivered
}

// Intercept lets tests play the man in the middle on the PCIe link: it may
// mutate the packet in flight. A nil Intercept is the honest link.
type Intercept func(layer int, p *Packet)

// RunSession drives the complete Figure 6 flow for one inference on the
// Seculator design: the host maps every layer, derives its VN triplet, and
// issues an authenticated command over the session-key channel; the NPU
// endpoint authenticates each command and cross-checks the triplet against
// its own derivation from the commanded layer before executing. Any channel
// violation aborts the session (reboot required). The returned result is
// the simulated execution of the commanded network.
func RunSession(net workload.Network, cfg runner.Config, sessionKey []byte, mitm Intercept) (SessionResult, error) {
	choices, err := sched.MapNetwork(net, cfg.NPU, cfg.DRAM)
	if err != nil {
		return SessionResult{}, err
	}
	ctrl := NewController(sessionKey)
	npu := NewEndpoint(sessionKey)

	for i, c := range choices {
		cmd := Command{
			LayerIndex: uint32(i),
			Layer:      c.Layer,
			Triplet:    dataflow.DeriveWrite(c.Mapping),
		}
		pkt := ctrl.Issue(cmd)
		if mitm != nil {
			mitm(i, &pkt)
		}
		rcvd, err := npu.Receive(pkt)
		if err != nil {
			return SessionResult{}, fmt.Errorf("host: layer %d command refused: %w", i, err)
		}
		// The NPU sanity-checks the commanded triplet against its own
		// derivation for the commanded layer — a forged-but-authenticated
		// command from a compromised host library would diverge here.
		m, err := sched.Map(rcvd.Layer, cfg.NPU, cfg.DRAM)
		if err != nil {
			return SessionResult{}, fmt.Errorf("host: layer %d: commanded layer unmappable: %w", i, err)
		}
		if want := dataflow.DeriveWrite(m.Mapping); want != rcvd.Triplet {
			return SessionResult{}, fmt.Errorf("%w: layer %d triplet %v != derived %v",
				ErrChannel, i, rcvd.Triplet, want)
		}
	}

	res, err := runner.Run(net, protect.Seculator, cfg)
	if err != nil {
		return SessionResult{}, err
	}
	return SessionResult{Result: res, Commands: len(choices)}, nil
}
