// Package npu models the compute side of the accelerator: a weight-
// stationary systolic array (Table 1: 32x32 PEs at 2.75 GHz) fed from a
// 240 KB global buffer. The timing model follows SCALE-Sim's analytic
// formulation: a tile pass streams `depth` partial sums through
// ceil(pixels/rows) x ceil(kt/cols) array waves, plus a fill/drain skew of
// rows+cols-2 cycles per pass.
//
// This is the substitution for the paper's in-house cycle-accurate
// simulator (see DESIGN.md): protection overheads act at the memory
// interface, so an analytic compute model with explicit per-tile
// compute/memory overlap preserves the relative results.
package npu

import (
	"fmt"

	"seculator/internal/sim"
)

// ArrayDataflow selects the systolic array's stationarity — which operand
// stays pinned in the PEs (SCALE-Sim's WS/OS/IS taxonomy). It changes the
// per-pass fill/drain skew, not the steady-state MAC throughput.
type ArrayDataflow uint8

const (
	// WeightStationary pins weights: refill skew once per reduction sweep.
	WeightStationary ArrayDataflow = iota
	// OutputStationary pins partial sums: skew on drain only.
	OutputStationary
	// InputStationary pins input pixels: skew on both edges.
	InputStationary
)

// String implements fmt.Stringer.
func (d ArrayDataflow) String() string {
	switch d {
	case WeightStationary:
		return "weight-stationary"
	case OutputStationary:
		return "output-stationary"
	case InputStationary:
		return "input-stationary"
	default:
		return fmt.Sprintf("ArrayDataflow(%d)", uint8(d))
	}
}

// Config describes the compute fabric.
type Config struct {
	Rows              int     // PE array rows (output pixels dimension)
	Cols              int     // PE array columns (output channels dimension)
	GlobalBufferBytes int     // on-chip global buffer capacity
	FreqHz            float64 // NPU clock
	Dataflow          ArrayDataflow
}

// DefaultConfig matches Table 1: a 32x32 array, 240 KB GB, 2.75 GHz.
func DefaultConfig() Config {
	return Config{Rows: 32, Cols: 32, GlobalBufferBytes: 240 * 1024, FreqHz: 2.75e9}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("npu: array dims must be positive, got %dx%d", c.Rows, c.Cols)
	}
	if c.GlobalBufferBytes <= 0 {
		return fmt.Errorf("npu: global buffer must be positive, got %d", c.GlobalBufferBytes)
	}
	if c.FreqHz <= 0 {
		return fmt.Errorf("npu: frequency must be positive, got %g", c.FreqHz)
	}
	return nil
}

// PEs returns the processing-element count.
func (c Config) PEs() int { return c.Rows * c.Cols }

// TilePassCycles returns the cycles to compute one tile pass producing
// `pixels` output positions for `kt` output channels with a reduction depth
// of `depth` MACs per output (CT*R*S for convolution). The steady-state
// term (waves x depth) is dataflow-independent; the array dataflow sets the
// skew paid around it, following SCALE-Sim's formulation.
func (c Config) TilePassCycles(pixels, kt, depth int) sim.Cycles {
	if pixels <= 0 || kt <= 0 || depth <= 0 {
		return 0
	}
	pixelWaves := uint64(ceilDiv(pixels, c.Rows))
	chanWaves := uint64(ceilDiv(kt, c.Cols))
	waves := pixelWaves * chanWaves

	var skew uint64
	switch c.Dataflow {
	case OutputStationary:
		// Partial sums stay put; operands skew in, results drain once.
		skew = uint64(c.Rows+c.Cols-2) + uint64(c.Rows)
	case InputStationary:
		// Inputs pinned; weights stream through and outputs skew out,
		// paying the diagonal on both edges per channel wave.
		skew = 2 * uint64(c.Rows+c.Cols-2) * chanWaves
	default: // WeightStationary
		// Weights preloaded once per pass; the input diagonal fills and
		// the output diagonal drains.
		skew = uint64(c.Rows + c.Cols - 2)
	}
	return sim.Cycles(waves*uint64(depth) + skew)
}

// LayerComputeCycles returns the total compute cycles of a layer executed
// as `passes` identical tile passes.
func (c Config) LayerComputeCycles(passes, pixels, kt, depth int) sim.Cycles {
	if passes <= 0 {
		return 0
	}
	return c.TilePassCycles(pixels, kt, depth) * sim.Cycles(passes)
}

// Utilization returns the fraction of peak MAC throughput achieved by a
// tile pass — a mapping-quality diagnostic.
func (c Config) Utilization(pixels, kt, depth int) float64 {
	cyc := c.TilePassCycles(pixels, kt, depth)
	if cyc == 0 {
		return 0
	}
	ideal := float64(pixels) * float64(kt) * float64(depth) / float64(c.PEs())
	return ideal / float64(cyc)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
