package npu

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Rows != 32 || c.Cols != 32 || c.GlobalBufferBytes != 240*1024 || c.FreqHz != 2.75e9 {
		t.Fatalf("default config diverges from Table 1: %+v", c)
	}
	if c.PEs() != 1024 {
		t.Fatalf("PEs = %d", c.PEs())
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Rows: 0, Cols: 1, GlobalBufferBytes: 1, FreqHz: 1},
		{Rows: 1, Cols: 0, GlobalBufferBytes: 1, FreqHz: 1},
		{Rows: 1, Cols: 1, GlobalBufferBytes: 0, FreqHz: 1},
		{Rows: 1, Cols: 1, GlobalBufferBytes: 1, FreqHz: 0},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("invalid config accepted: %+v", c)
		}
	}
}

func TestTilePassCycles(t *testing.T) {
	c := Config{Rows: 4, Cols: 4, GlobalBufferBytes: 1, FreqHz: 1}
	// 8 pixels, 8 channels, depth 10: waves = 2*2 = 4 -> 40 + fill 6.
	if got := c.TilePassCycles(8, 8, 10); got != 46 {
		t.Fatalf("TilePassCycles = %d, want 46", got)
	}
	if c.TilePassCycles(0, 8, 10) != 0 || c.TilePassCycles(8, 0, 10) != 0 {
		t.Fatal("degenerate pass should be free")
	}
}

func TestLayerComputeCycles(t *testing.T) {
	c := Config{Rows: 4, Cols: 4, GlobalBufferBytes: 1, FreqHz: 1}
	per := c.TilePassCycles(8, 8, 10)
	if got := c.LayerComputeCycles(3, 8, 8, 10); got != per*3 {
		t.Fatalf("LayerComputeCycles = %d, want %d", got, per*3)
	}
	if c.LayerComputeCycles(0, 8, 8, 10) != 0 {
		t.Fatal("zero passes should be free")
	}
}

func TestUtilizationBounds(t *testing.T) {
	c := DefaultConfig()
	// Perfectly shaped pass: full array, long depth -> near 1.
	u := c.Utilization(32*100, 32, 288)
	if u <= 0.5 || u > 1.0 {
		t.Fatalf("well-shaped utilization = %g", u)
	}
	// Tiny pass: dominated by fill -> low.
	if v := c.Utilization(1, 1, 1); v >= u {
		t.Fatalf("tiny pass utilization %g not below %g", v, u)
	}
	if c.Utilization(0, 1, 1) != 0 {
		t.Fatal("empty pass utilization should be 0")
	}
}

// Property: cycles scale monotonically with every shape parameter.
func TestCyclesMonotoneProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(p, k, d uint16) bool {
		pixels, kt, depth := int(p%200)+1, int(k%64)+1, int(d%512)+1
		base := c.TilePassCycles(pixels, kt, depth)
		return c.TilePassCycles(pixels+1, kt, depth) >= base &&
			c.TilePassCycles(pixels, kt+1, depth) >= base &&
			c.TilePassCycles(pixels, kt, depth+1) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization never exceeds 1 (can't beat peak throughput).
func TestUtilizationCapProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(p, k, d uint16) bool {
		u := c.Utilization(int(p%4096)+1, int(k%512)+1, int(d%2048)+1)
		return u > 0 && u <= 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArrayDataflowSkews(t *testing.T) {
	base := Config{Rows: 4, Cols: 4, GlobalBufferBytes: 1, FreqHz: 1}
	ws := base
	os := base
	os.Dataflow = OutputStationary
	is := base
	is.Dataflow = InputStationary

	// Same steady state, different skew: WS <= OS <= IS for multi-wave
	// passes on this geometry.
	w := ws.TilePassCycles(8, 8, 10)
	o := os.TilePassCycles(8, 8, 10)
	i := is.TilePassCycles(8, 8, 10)
	if !(w <= o && o <= i) {
		t.Fatalf("skew ordering broken: WS=%d OS=%d IS=%d", w, o, i)
	}
	// WS keeps the original closed-form: waves*depth + rows+cols-2.
	if w != 46 {
		t.Fatalf("WS cycles = %d, want 46", w)
	}
	for _, d := range []ArrayDataflow{WeightStationary, OutputStationary, InputStationary, ArrayDataflow(9)} {
		if d.String() == "" {
			t.Fatalf("empty string for dataflow %d", d)
		}
	}
}
