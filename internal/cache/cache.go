// Package cache provides the set-associative write-back cache used to model
// the on-chip metadata caches of the secure designs: the 8 KB MAC cache
// (Secure, TNPU) and the 4 KB counter cache (Secure). Line granularity is
// 64 bytes; replacement is LRU.
//
// The cache is a timing/occupancy model keyed by line address: it tracks
// hits, misses, dirty state and evictions, but stores no payload — the
// functional data lives with the protection engines.
//
// Error discipline: constructors return errors for bad configuration; the
// package never panics on a reachable data path. Panics are reserved for
// unreachable programmer-error invariants.
package cache

import (
	"fmt"

	"seculator/internal/sim"
)

// LineBytes is the cache line size (matches the DRAM block size).
const LineBytes = 64

// Stats aggregates cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// MissRate returns Misses/Accesses.
func (s Stats) MissRate() float64 { return sim.Ratio(s.Misses, s.Accesses) }

// HitRate returns Hits/Accesses.
func (s Stats) HitRate() float64 { return sim.Ratio(s.Hits, s.Accesses) }

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch tick
}

// Cache is a set-associative, write-back, write-allocate cache model.
type Cache struct {
	sets  int
	ways  int
	lines []line // sets*ways, row-major by set
	tick  uint64
	stats Stats
}

// New builds a cache of capacityBytes with the given associativity.
// capacityBytes must be a positive multiple of ways*LineBytes and the
// resulting set count must be a power of two.
func New(capacityBytes, ways int) (*Cache, error) {
	if capacityBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: capacity %d and ways %d must be positive", capacityBytes, ways)
	}
	linesTotal := capacityBytes / LineBytes
	if linesTotal*LineBytes != capacityBytes {
		return nil, fmt.Errorf("cache: capacity %d is not a multiple of the %d-byte line", capacityBytes, LineBytes)
	}
	if linesTotal%ways != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible by %d ways", linesTotal, ways)
	}
	sets := linesTotal / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return &Cache{sets: sets, ways: ways, lines: make([]line, linesTotal)}, nil
}

// Result describes the outcome of one access.
type Result struct {
	Hit          bool
	Evicted      bool   // a valid line was displaced
	WritebackReq bool   // the displaced line was dirty -> one DRAM write
	VictimAddr   uint64 // line address of the displaced line, if any
}

// Access touches the line containing lineAddr (already in line units).
// write marks the line dirty. Returns hit/miss and any eviction caused.
func (c *Cache) Access(lineAddr uint64, write bool) Result {
	c.tick++
	c.stats.Accesses++
	set := int(lineAddr % uint64(c.sets))
	tag := lineAddr / uint64(c.sets)
	base := set * c.ways

	// Hit path.
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].tag == tag {
			c.lines[i].lru = c.tick
			if write {
				c.lines[i].dirty = true
			}
			c.stats.Hits++
			return Result{Hit: true}
		}
	}

	// Miss: pick an invalid way or the LRU victim.
	c.stats.Misses++
	victim := base
	for i := base; i < base+c.ways; i++ {
		if !c.lines[i].valid {
			victim = i
			break
		}
		if c.lines[i].lru < c.lines[victim].lru {
			victim = i
		}
	}
	res := Result{}
	v := &c.lines[victim]
	if v.valid {
		res.Evicted = true
		res.VictimAddr = v.tag*uint64(c.sets) + uint64(set)
		if v.dirty {
			res.WritebackReq = true
			c.stats.Writebacks++
		}
		c.stats.Evictions++
	}
	*v = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	return res
}

// FlushDirty returns the number of dirty lines and marks them clean —
// modeling the end-of-layer writeback of resident metadata.
func (c *Cache) FlushDirty() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			c.lines[i].dirty = false
			n++
		}
	}
	c.stats.Writebacks += uint64(n)
	return n
}

// Invalidate clears the entire cache without writebacks.
func (c *Cache) Invalidate() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters, keeping contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Sets and Ways expose the geometry.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// CapacityBytes returns the total data capacity.
func (c *Cache) CapacityBytes() int { return c.sets * c.ways * LineBytes }
