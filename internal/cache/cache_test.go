package cache

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(4096, 0); err == nil {
		t.Fatal("zero ways accepted")
	}
	if _, err := New(100, 1); err == nil {
		t.Fatal("non-multiple capacity accepted")
	}
	if _, err := New(3*64*4, 4); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
	c, err := New(8192, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sets() != 32 || c.Ways() != 4 || c.CapacityBytes() != 8192 {
		t.Fatalf("geometry: sets=%d ways=%d cap=%d", c.Sets(), c.Ways(), c.CapacityBytes())
	}
}

func mustNew(t *testing.T, capacityBytes, ways int) *Cache {
	t.Helper()
	c, err := New(capacityBytes, ways)
	if err != nil {
		t.Fatalf("New(%d, %d): %v", capacityBytes, ways, err)
	}
	return c
}

func TestHitMiss(t *testing.T) {
	c := mustNew(t, 4*64, 1) // 4 direct-mapped lines
	if r := c.Access(0, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0, false); !r.Hit {
		t.Fatal("warm access missed")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.MissRate() != 0.5 || s.HitRate() != 0.5 {
		t.Fatalf("rates: %g %g", s.MissRate(), s.HitRate())
	}
}

func TestConflictEvictionAndWriteback(t *testing.T) {
	c := mustNew(t, 4*64, 1) // direct mapped, 4 sets
	c.Access(0, true)        // dirty line in set 0
	r := c.Access(4, false)
	if r.Hit || !r.Evicted || !r.WritebackReq || r.VictimAddr != 0 {
		t.Fatalf("conflict eviction wrong: %+v", r)
	}
	// Clean eviction: line 4 was read-only.
	r = c.Access(8, false)
	if !r.Evicted || r.WritebackReq || r.VictimAddr != 4 {
		t.Fatalf("clean eviction wrong: %+v", r)
	}
	s := c.Stats()
	if s.Evictions != 2 || s.Writebacks != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestLRUOrder(t *testing.T) {
	c := mustNew(t, 2*64, 2) // one set, two ways
	c.Access(0, false)
	c.Access(1, false)
	c.Access(0, false) // 0 is now MRU
	r := c.Access(2, false)
	if r.VictimAddr != 1 {
		t.Fatalf("LRU should evict addr 1, evicted %d", r.VictimAddr)
	}
	if r := c.Access(0, false); !r.Hit {
		t.Fatal("MRU line was evicted")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := mustNew(t, 2*64, 2)
	c.Access(0, false) // clean fill
	c.Access(0, true)  // write hit -> dirty
	c.Access(1, false)
	r := c.Access(2, false) // evicts 0 (LRU)... 0 was touched at t=2, 1 at t=3
	if r.VictimAddr != 0 || !r.WritebackReq {
		t.Fatalf("write-hit dirtiness lost: %+v", r)
	}
}

func TestFlushDirty(t *testing.T) {
	c := mustNew(t, 8*64, 2)
	c.Access(0, true)
	c.Access(1, true)
	c.Access(2, false)
	if n := c.FlushDirty(); n != 2 {
		t.Fatalf("FlushDirty = %d, want 2", n)
	}
	if n := c.FlushDirty(); n != 0 {
		t.Fatalf("second FlushDirty = %d, want 0", n)
	}
}

func TestInvalidate(t *testing.T) {
	c := mustNew(t, 4*64, 2)
	c.Access(0, true)
	c.Invalidate()
	if r := c.Access(0, false); r.Hit {
		t.Fatal("hit after Invalidate")
	}
}

func TestResetStats(t *testing.T) {
	c := mustNew(t, 4*64, 2)
	c.Access(0, false)
	c.ResetStats()
	if s := c.Stats(); s.Accesses != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
	if r := c.Access(0, false); !r.Hit {
		t.Fatal("contents should survive ResetStats")
	}
}

// Streaming behaviour: sequential lines through a small cache miss once per
// line and never hit — the paper's observation about MAC caches on
// streaming DNN data.
func TestStreamingHasNoReuse(t *testing.T) {
	c := mustNew(t, 8192, 4) // the 8 KB MAC cache
	for addr := uint64(0); addr < 4096; addr++ {
		if r := c.Access(addr, false); r.Hit {
			t.Fatalf("streaming access %d hit", addr)
		}
	}
	if mr := c.Stats().MissRate(); mr != 1.0 {
		t.Fatalf("streaming miss rate = %g, want 1.0", mr)
	}
}

// Property: hits+misses == accesses, and a second touch of any address with
// no intervening conflicting fills is a hit.
func TestAccountingProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := mustNew(t, 64*64, 4)
		for _, a := range addrs {
			c.Access(uint64(a), a%2 == 0)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses && s.Writebacks <= s.Evictions+uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache never holds more distinct lines than its capacity.
func TestCapacityProperty(t *testing.T) {
	f := func(addrs []uint8) bool {
		c := mustNew(t, 4*64, 2) // 4 lines total
		resident := map[uint64]bool{}
		for _, a := range addrs {
			r := c.Access(uint64(a), false)
			resident[uint64(a)] = true
			if r.Evicted {
				delete(resident, r.VictimAddr)
			}
			if len(resident) > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
