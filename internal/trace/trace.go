// Package trace captures and analyzes the memory-address trace of a
// simulated execution — the bus-snooper's raw material for model
// extraction. It records every data-tile transfer with its resolved block
// address range, reconstructs per-layer footprints, infers layer boundaries
// the way an attacker without ground truth would (by watching the write
// region migrate), and quantifies address entropy.
//
// The Seculator+ evaluation uses these analyses to show what layer widening
// and dummy-network noise do to an observer: footprints describe padded
// geometry, and inferred boundaries stop matching the real network.
package trace

import (
	"context"
	"fmt"
	"math"
	"sort"

	"seculator/internal/mem"
	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/sim"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

// Record is one observed transfer: a contiguous block range with direction
// and (ground-truth) layer tag. The Tensor tag is ground truth too; the
// attacker-view analyses ignore both tags.
type Record struct {
	Layer  int
	Kind   sim.AccessKind
	Tensor tensor.Kind
	Addr   uint64
	Blocks int
}

// Trace is an ordered transfer sequence.
type Trace struct {
	Network string
	Design  protect.Design
	Records []Record
}

// Capture simulates (network, design) under cfg and records the trace.
// ctx cancels the underlying simulation.
func Capture(ctx context.Context, n workload.Network, d protect.Design, cfg runner.Config) (*Trace, error) {
	t := &Trace{Network: n.Name, Design: d}
	cfg.TraceFn = t.sink()
	if _, err := runner.Run(ctx, n, d, cfg); err != nil {
		return nil, err
	}
	return t, nil
}

// CaptureLayers records the trace of an arbitrary layer schedule (e.g. a
// dummy-interspersed Seculator+ execution, which is not a chained network).
func CaptureLayers(ctx context.Context, name string, layers []workload.Layer, d protect.Design, cfg runner.Config) (*Trace, error) {
	t := &Trace{Network: name, Design: d}
	cfg.TraceFn = t.sink()
	if _, err := runner.RunLayers(ctx, name, layers, d, cfg); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Trace) sink() func(int, sim.AccessKind, tensor.Kind, uint64, int) {
	return func(layer int, kind sim.AccessKind, tns tensor.Kind, addr uint64, blocks int) {
		t.Records = append(t.Records, Record{Layer: layer, Kind: kind, Tensor: tns, Addr: addr, Blocks: blocks})
	}
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// TotalBlocks returns the blocks moved (reads + writes).
func (t *Trace) TotalBlocks() uint64 {
	var n uint64
	for _, r := range t.Records {
		n += uint64(r.Blocks)
	}
	return n
}

// Footprint returns the number of distinct block addresses touched.
func (t *Trace) Footprint() int {
	seen := map[uint64]bool{}
	for _, r := range t.Records {
		for b := 0; b < r.Blocks; b++ {
			seen[r.Addr+uint64(b)] = true
		}
	}
	return len(seen)
}

// LayerFootprint is the per-layer region summary (ground truth labels).
type LayerFootprint struct {
	Layer        int
	ReadBlocks   uint64
	WriteBlocks  uint64
	UniqueBlocks int
}

// LayerFootprints groups the trace by its ground-truth layer tags.
func (t *Trace) LayerFootprints() []LayerFootprint {
	unique := map[int]map[uint64]bool{}
	agg := map[int]*LayerFootprint{}
	for _, r := range t.Records {
		f := agg[r.Layer]
		if f == nil {
			f = &LayerFootprint{Layer: r.Layer}
			agg[r.Layer] = f
			unique[r.Layer] = map[uint64]bool{}
		}
		if r.Kind == sim.Read {
			f.ReadBlocks += uint64(r.Blocks)
		} else {
			f.WriteBlocks += uint64(r.Blocks)
		}
		for b := 0; b < r.Blocks; b++ {
			unique[r.Layer][r.Addr+uint64(b)] = true
		}
	}
	out := make([]LayerFootprint, 0, len(agg))
	for l, f := range agg {
		f.UniqueBlocks = len(unique[l])
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Layer < out[j].Layer })
	return out
}

// InferBoundaries is the attacker's layer segmentation: without tags, a new
// layer is declared whenever the write stream migrates to a block region
// disjoint from the current layer's write region. Returns the record
// indices at which inferred layers begin (always starting with 0).
func (t *Trace) InferBoundaries() []int {
	if len(t.Records) == 0 {
		return nil
	}
	boundaries := []int{0}
	var writeLo, writeHi uint64
	haveWrites := false
	for i, r := range t.Records {
		if r.Kind != sim.Write {
			continue
		}
		lo, hi := r.Addr, r.Addr+uint64(r.Blocks)
		if !haveWrites {
			writeLo, writeHi, haveWrites = lo, hi, true
			continue
		}
		// Disjoint and beyond the current write region: a new output
		// tensor is being produced.
		if lo >= writeHi || hi <= writeLo {
			boundaries = append(boundaries, i)
			writeLo, writeHi = lo, hi
			continue
		}
		if lo < writeLo {
			writeLo = lo
		}
		if hi > writeHi {
			writeHi = hi
		}
	}
	return boundaries
}

// InferredLayerCount is the attacker's estimate of the network depth.
func (t *Trace) InferredLayerCount() int { return len(t.InferBoundaries()) }

// AddressEntropy returns the Shannon entropy (bits) of the distribution of
// block addresses weighted by transfer volume — a coarse measure of how
// spread / predictable the trace looks to a snooper.
func (t *Trace) AddressEntropy() float64 {
	counts := map[uint64]uint64{}
	var total uint64
	for _, r := range t.Records {
		for b := 0; b < r.Blocks; b++ {
			counts[r.Addr+uint64(b)]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// ReadWriteRatio returns read blocks / write blocks.
func (t *Trace) ReadWriteRatio() float64 {
	var rd, wr uint64
	for _, r := range t.Records {
		if r.Kind == sim.Read {
			rd += uint64(r.Blocks)
		} else {
			wr += uint64(r.Blocks)
		}
	}
	return sim.Ratio(rd, wr)
}

// RowBufferHitRate replays the trace's block addresses through an
// open-page bank model and returns the row-buffer hit rate — the locality a
// bus stream would see with the given DRAM geometry.
func (t *Trace) RowBufferHitRate(channels, banks, rowBlocks int) (float64, error) {
	m, err := mem.NewRowBuffer(channels, banks, rowBlocks)
	if err != nil {
		return 0, err
	}
	for _, r := range t.Records {
		m.AccessRange(r.Addr, r.Blocks)
	}
	return m.HitRate(), nil
}

// RowBufferHitRateWithMetadata replays the trace with per-block MAC-line
// accesses interleaved, the access pattern of an uncached per-block design:
// after every 8 data blocks the stream detours to the MAC region at
// macBase. The difference against RowBufferHitRate isolates the row-
// locality damage metadata interleaving causes — overhead the flat
// bandwidth model cannot see.
func (t *Trace) RowBufferHitRateWithMetadata(channels, banks, rowBlocks int, macBase uint64) (float64, error) {
	m, err := mem.NewRowBuffer(channels, banks, rowBlocks)
	if err != nil {
		return 0, err
	}
	for _, r := range t.Records {
		for b := 0; b < r.Blocks; b++ {
			addr := r.Addr + uint64(b)
			m.Access(addr)
			if b%8 == 0 {
				m.Access(macBase + addr/8) // the block's MAC line
			}
		}
	}
	return m.HitRate(), nil
}

// Summary renders the headline statistics.
func (t *Trace) Summary() string {
	return fmt.Sprintf("%s/%s: %d transfers, %d blocks, footprint %d, %d inferred layers, entropy %.1f bits",
		t.Network, t.Design, t.Len(), t.TotalBlocks(), t.Footprint(),
		t.InferredLayerCount(), t.AddressEntropy())
}
