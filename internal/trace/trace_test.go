package trace

import (
	"context"
	"testing"

	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/widen"
	"seculator/internal/workload"
)

func testNet() workload.Network {
	return workload.Network{
		Name: "tracee",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 3, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: workload.Conv, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 2},
			{Name: "c3", Type: workload.Conv, C: 8, H: 8, W: 8, K: 16, R: 3, S: 3, Stride: 1},
		},
	}
}

func capture(t *testing.T, n workload.Network) *Trace {
	t.Helper()
	tr, err := Capture(context.Background(), n, protect.Baseline, runner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCaptureBasics(t *testing.T) {
	tr := capture(t, testNet())
	if tr.Len() == 0 || tr.TotalBlocks() == 0 || tr.Footprint() == 0 {
		t.Fatalf("empty trace: %s", tr.Summary())
	}
	if tr.Network != "tracee" || tr.Design != protect.Baseline {
		t.Fatal("trace metadata wrong")
	}
	// The trace's total must match the runner's data traffic.
	var cfg = runner.DefaultConfig()
	res, err := runner.Run(context.Background(), testNet(), protect.Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalBlocks() != res.Traffic.ByKind(0) {
		t.Fatalf("trace blocks %d != runner data traffic %d", tr.TotalBlocks(), res.Traffic.ByKind(0))
	}
}

func TestLayerFootprints(t *testing.T) {
	net := testNet()
	tr := capture(t, net)
	fps := tr.LayerFootprints()
	if len(fps) != len(net.Layers) {
		t.Fatalf("footprints for %d layers, want %d", len(fps), len(net.Layers))
	}
	for _, f := range fps {
		if f.WriteBlocks == 0 || f.ReadBlocks == 0 || f.UniqueBlocks == 0 {
			t.Fatalf("degenerate footprint: %+v", f)
		}
	}
}

// The attacker's boundary inference must recover the true layer count on an
// unprotected trace: each layer writes a fresh output region.
func TestInferBoundariesMatchesLayers(t *testing.T) {
	net := testNet()
	tr := capture(t, net)
	if got := tr.InferredLayerCount(); got != len(net.Layers) {
		t.Fatalf("inferred %d layers, want %d", got, len(net.Layers))
	}
	// Boundary indices must be increasing and start at 0.
	bs := tr.InferBoundaries()
	if bs[0] != 0 {
		t.Fatal("first boundary must be record 0")
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Fatal("boundaries not increasing")
		}
	}
}

// Widening inflates every observable: footprint, entropy and volume.
func TestWideningInflatesTrace(t *testing.T) {
	net := testNet()
	wnet, err := widen.Network(net, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	base := capture(t, net)
	wide := capture(t, wnet)
	if wide.Footprint() <= base.Footprint() {
		t.Fatalf("widened footprint %d not above base %d", wide.Footprint(), base.Footprint())
	}
	if wide.AddressEntropy() <= base.AddressEntropy() {
		t.Fatalf("widened entropy %.2f not above base %.2f", wide.AddressEntropy(), base.AddressEntropy())
	}
	if wide.TotalBlocks() <= base.TotalBlocks() {
		t.Fatal("widened volume not above base")
	}
}

// Dummy layers appended to the victim change the inferred depth — the
// alignment confusion of Seculator+'s noise injection.
func TestDummyLayersChangeInferredDepth(t *testing.T) {
	net := testNet()
	dummy, err := widen.Dummy("noise", 3, 8, 8, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Chain the dummy onto the real network's output shape (16 chans, 8x8).
	combined := workload.Network{Name: "mixed", Layers: append(append([]workload.Layer{}, net.Layers...), dummy.Layers...)}
	if err := combined.Validate(); err != nil {
		t.Fatal(err)
	}
	tr := capture(t, combined)
	if got := tr.InferredLayerCount(); got != len(net.Layers)+len(dummy.Layers) {
		t.Fatalf("inferred %d layers, want %d", got, len(net.Layers)+len(dummy.Layers))
	}
}

func TestEntropyAndRatioBounds(t *testing.T) {
	tr := capture(t, testNet())
	h := tr.AddressEntropy()
	if h <= 0 {
		t.Fatalf("entropy = %.2f", h)
	}
	if r := tr.ReadWriteRatio(); r <= 0 {
		t.Fatalf("read/write ratio = %.2f", r)
	}
	empty := &Trace{}
	if empty.AddressEntropy() != 0 || empty.InferredLayerCount() != 0 || empty.Footprint() != 0 {
		t.Fatal("empty trace statistics must be zero")
	}
}

func TestSummaryString(t *testing.T) {
	tr := capture(t, testNet())
	if tr.Summary() == "" {
		t.Fatal("empty summary")
	}
}

// Interspersed decoy layers inflate the attacker's inferred depth — the
// dummy-network defence observed at the trace level.
func TestInterspersedTraceConfusesDepth(t *testing.T) {
	net := testNet()
	dummy, err := widen.Dummy("noise", 2, 8, 8, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := widen.Intersperse(net, dummy, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := CaptureLayers(context.Background(), "noisy", sched, protect.SeculatorPlus, runner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.InferredLayerCount(); got <= len(net.Layers) {
		t.Fatalf("inferred depth %d not inflated beyond real %d", got, len(net.Layers))
	}
}

// The row-buffer analysis quantifies the paper's interleaving argument:
// per-block MAC detours reduce the stream's row locality.
func TestRowBufferMetadataPenalty(t *testing.T) {
	tr := capture(t, testNet())
	clean, err := tr.RowBufferHitRate(2, 16, 128)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := tr.RowBufferHitRateWithMetadata(2, 16, 128, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if clean <= 0.5 {
		t.Fatalf("streaming trace should have high row locality, got %.3f", clean)
	}
	if dirty >= clean {
		t.Fatalf("metadata interleaving did not reduce locality: %.3f >= %.3f", dirty, clean)
	}
	if _, err := tr.RowBufferHitRate(0, 0, 0); err == nil {
		t.Fatal("bad geometry accepted")
	}
	if _, err := tr.RowBufferHitRateWithMetadata(0, 0, 0, 0); err == nil {
		t.Fatal("bad geometry accepted")
	}
}
