// Package merkle implements the integrity tree that protects the
// encryption counters of the SGX-Client-style "Secure" configuration
// (Section 2.1.1). Leaves are the 64-byte counter-line images of protected
// pages; internal nodes hash their children; the root lives on-chip (in the
// TCB) and can never be tampered with. Any modification of a counter in
// DRAM — the lever for replay attacks — breaks the path to the root.
//
// The tree has a fixed arity and covers a fixed number of pages chosen at
// construction. Verification walks leaf-to-root; its DRAM cost in the
// timing model is the number of non-cached levels.
package merkle

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// Arity is the tree fan-out: one 64-byte node holds 8 8-byte child digests.
const Arity = 8

// ErrCounterIntegrity is returned when a counter line fails verification.
var ErrCounterIntegrity = errors.New("merkle: counter integrity violation")

// LeafSource supplies the current 64-byte image of a leaf (a page's
// counter line). The tree pulls leaf contents on demand so that an
// attacker mutating the counter store is caught at the next verification.
type LeafSource interface {
	Serialize(pageIdx uint64, dst []byte)
}

// Tree is the counter-integrity tree.
type Tree struct {
	leaves int
	levels int // internal hash levels above the leaves (>= 1)
	src    LeafSource

	// nodes[l][i] is the digest of node i at level l; level 0 is the
	// hashes of the leaves, level levels-1 is the root's children. The
	// root digest itself is held separately (on-chip).
	nodes [][][32]byte
	root  [32]byte

	verifications uint64
	updates       uint64
}

// New builds a tree over `pages` leaves pulled from src, hashing the
// current contents. pages must be positive.
func New(pages int, src LeafSource) (*Tree, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("merkle: page count must be positive, got %d", pages)
	}
	if src == nil {
		return nil, errors.New("merkle: nil leaf source")
	}
	t := &Tree{leaves: pages, src: src}
	// Build level sizes: level 0 has ceil(pages) digests, each next level
	// shrinks by Arity until a single node remains under the root.
	n := pages
	for {
		t.nodes = append(t.nodes, make([][32]byte, n))
		if n == 1 {
			break
		}
		n = (n + Arity - 1) / Arity
	}
	t.levels = len(t.nodes)
	for i := 0; i < pages; i++ {
		t.nodes[0][i] = t.leafHash(uint64(i))
	}
	for l := 1; l < t.levels; l++ {
		for i := range t.nodes[l] {
			t.nodes[l][i] = t.childHash(l, i)
		}
	}
	t.root = hashNode(t.nodes[t.levels-1])
	return t, nil
}

func (t *Tree) leafHash(pageIdx uint64) [32]byte {
	var img [64]byte
	t.src.Serialize(pageIdx, img[:])
	return sha256.Sum256(img[:])
}

// childHash hashes the up-to-Arity children of node i at level l.
func (t *Tree) childHash(l, i int) [32]byte {
	lo := i * Arity
	hi := lo + Arity
	if hi > len(t.nodes[l-1]) {
		hi = len(t.nodes[l-1])
	}
	return hashNode(t.nodes[l-1][lo:hi])
}

func hashNode(children [][32]byte) [32]byte {
	h := sha256.New()
	for _, c := range children {
		h.Write(c[:])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Levels returns the number of hash levels above the leaves — the
// worst-case DRAM accesses of an uncached verification walk.
func (t *Tree) Levels() int { return t.levels }

// Leaves returns the covered page count.
func (t *Tree) Leaves() int { return t.leaves }

// Update re-hashes the path from pageIdx to the root after a legitimate
// counter change. Must be called by the owner (the secure engine), not by
// attackers — that is the point.
func (t *Tree) Update(pageIdx uint64) error {
	if pageIdx >= uint64(t.leaves) {
		return fmt.Errorf("merkle: page %d out of range (%d leaves)", pageIdx, t.leaves)
	}
	t.updates++
	t.nodes[0][pageIdx] = t.leafHash(pageIdx)
	i := int(pageIdx)
	for l := 1; l < t.levels; l++ {
		i /= Arity
		t.nodes[l][i] = t.childHash(l, i)
	}
	t.root = hashNode(t.nodes[t.levels-1])
	return nil
}

// Verify checks the leaf's current content against the stored path and the
// on-chip root. It detects any out-of-band mutation of the counter store
// or of the stored tree nodes.
func (t *Tree) Verify(pageIdx uint64) error {
	if pageIdx >= uint64(t.leaves) {
		return fmt.Errorf("merkle: page %d out of range (%d leaves)", pageIdx, t.leaves)
	}
	t.verifications++
	if t.leafHash(pageIdx) != t.nodes[0][pageIdx] {
		return fmt.Errorf("%w: page %d leaf hash mismatch", ErrCounterIntegrity, pageIdx)
	}
	i := int(pageIdx)
	for l := 1; l < t.levels; l++ {
		i /= Arity
		if t.childHash(l, i) != t.nodes[l][i] {
			return fmt.Errorf("%w: page %d level %d node mismatch", ErrCounterIntegrity, pageIdx, l)
		}
	}
	if hashNode(t.nodes[t.levels-1]) != t.root {
		return fmt.Errorf("%w: root mismatch", ErrCounterIntegrity)
	}
	return nil
}

// TamperNode flips a bit in a stored (off-chip) tree node — the attacker
// primitive. The root is on-chip and cannot be tampered with.
func (t *Tree) TamperNode(level, index int, mask byte) error {
	if level < 0 || level >= t.levels || index < 0 || index >= len(t.nodes[level]) {
		return fmt.Errorf("merkle: no node at level %d index %d", level, index)
	}
	t.nodes[level][index][0] ^= mask
	return nil
}

// Verifications and Updates expose the operation counts for the stats.
func (t *Tree) Verifications() uint64 { return t.verifications }

// Updates returns the number of Update calls.
func (t *Tree) Updates() uint64 { return t.updates }
