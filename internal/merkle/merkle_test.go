package merkle

import (
	"errors"
	"testing"

	"seculator/internal/counter"
)

func newTree(t *testing.T, pages int) (*Tree, *counter.Store) {
	t.Helper()
	s := counter.NewStore()
	tr, err := New(pages, s)
	if err != nil {
		t.Fatal(err)
	}
	return tr, s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, counter.NewStore()); err == nil {
		t.Fatal("zero pages accepted")
	}
	if _, err := New(4, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestGeometry(t *testing.T) {
	tr, _ := newTree(t, 1)
	if tr.Levels() != 1 || tr.Leaves() != 1 {
		t.Fatalf("1-page tree: levels=%d leaves=%d", tr.Levels(), tr.Leaves())
	}
	tr, _ = newTree(t, 64)
	if tr.Levels() != 3 { // 64 -> 8 -> 1
		t.Fatalf("64-page tree levels = %d, want 3", tr.Levels())
	}
	tr, _ = newTree(t, 65)
	if tr.Levels() != 4 { // 65 -> 9 -> 2 -> 1
		t.Fatalf("65-page tree levels = %d, want 4", tr.Levels())
	}
}

func TestVerifyFreshTree(t *testing.T) {
	tr, _ := newTree(t, 16)
	for p := uint64(0); p < 16; p++ {
		if err := tr.Verify(p); err != nil {
			t.Fatalf("fresh tree page %d: %v", p, err)
		}
	}
	if tr.Verifications() != 16 {
		t.Fatalf("Verifications = %d", tr.Verifications())
	}
}

func TestUpdateThenVerify(t *testing.T) {
	tr, s := newTree(t, 16)
	s.Increment(5 * counter.BlocksPerPage) // page 5
	// Without Update, verification of page 5 must fail (content changed).
	if err := tr.Verify(5); !errors.Is(err, ErrCounterIntegrity) {
		t.Fatalf("stale tree accepted changed counters: %v", err)
	}
	if err := tr.Update(5); err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(5); err != nil {
		t.Fatalf("verify after update: %v", err)
	}
	if tr.Updates() != 1 {
		t.Fatalf("Updates = %d", tr.Updates())
	}
}

// The anti-replay core: an attacker rolling a counter back (or forward) is
// always detected, because only the owner calls Update.
func TestDetectsCounterTamper(t *testing.T) {
	tr, s := newTree(t, 8)
	s.Increment(0)
	if err := tr.Update(0); err != nil {
		t.Fatal(err)
	}
	s.TamperMajor(0, 1) // attacker bumps the major counter off-band
	if err := tr.Verify(0); !errors.Is(err, ErrCounterIntegrity) {
		t.Fatalf("counter tamper not detected: %v", err)
	}
	// Other pages remain verifiable.
	if err := tr.Verify(3); err != nil {
		t.Fatalf("unrelated page affected: %v", err)
	}
}

// Tampering stored tree nodes (off-chip) cannot forge a path because the
// root is on-chip.
func TestDetectsNodeTamper(t *testing.T) {
	for _, level := range []int{0, 1, 2} {
		tr, _ := newTree(t, 64) // 3 levels
		if err := tr.TamperNode(level, 0, 0x80); err != nil {
			t.Fatal(err)
		}
		if err := tr.Verify(0); !errors.Is(err, ErrCounterIntegrity) {
			t.Fatalf("level-%d node tamper not detected: %v", level, err)
		}
	}
}

func TestTamperNodeBounds(t *testing.T) {
	tr, _ := newTree(t, 8)
	if err := tr.TamperNode(99, 0, 1); err == nil {
		t.Fatal("bad level accepted")
	}
	if err := tr.TamperNode(0, 99, 1); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestOutOfRange(t *testing.T) {
	tr, _ := newTree(t, 8)
	if err := tr.Verify(8); err == nil {
		t.Fatal("out-of-range Verify accepted")
	}
	if err := tr.Update(8); err == nil {
		t.Fatal("out-of-range Update accepted")
	}
}

// A consistent forgery attempt: attacker rewrites the counter AND the leaf
// hash AND every path node — still caught by the on-chip root.
func TestRootAnchorsForgery(t *testing.T) {
	tr, s := newTree(t, 64)
	s.Increment(0)
	// Attacker mirrors the owner's hashing for the whole path, which in
	// this model is equivalent to calling the same recompute logic the
	// owner uses — but cannot touch tr.root. Emulate by recomputing path
	// nodes by hand via TamperNode to the "correct" forged values: the
	// simplest equivalent is to show Update fixes everything only because
	// it also refreshes the root, which the attacker cannot do. So:
	tr2, s2 := newTree(t, 64)
	s2.Increment(0)
	// tr2 was built before the increment; rebuilding a fresh tree (what a
	// full forgery amounts to) yields a different root than tr2.root.
	forged, err := New(64, s2)
	if err != nil {
		t.Fatal(err)
	}
	if forged.root == tr2.root {
		t.Fatal("forged tree root equals original despite changed counters")
	}
	_ = tr
	_ = s
}
