package runner

import (
	"context"
	"testing"

	"seculator/internal/protect"
	"seculator/internal/sim"
	"seculator/internal/workload"
)

// smallNet is a fast three-layer CNN for unit tests.
func smallNet() workload.Network {
	return workload.Network{
		Name: "small",
		Layers: []workload.Layer{
			{Name: "conv1", Type: workload.Conv, C: 3, H: 32, W: 32, K: 16, R: 3, S: 3, Stride: 1},
			{Name: "conv2", Type: workload.Conv, C: 16, H: 32, W: 32, K: 32, R: 3, S: 3, Stride: 2},
			{Name: "fc", Type: workload.FC, C: 32 * 16 * 16, H: 1, W: 1, K: 10, R: 1, S: 1, Stride: 1},
		},
	}
}

func TestRunBaseline(t *testing.T) {
	r, err := Run(context.Background(), smallNet(), protect.Baseline, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	if len(r.Layers) != 3 {
		t.Fatalf("layer results = %d", len(r.Layers))
	}
	if r.Traffic.Overhead() != 0 {
		t.Fatalf("baseline has metadata traffic: %d", r.Traffic.Overhead())
	}
	if r.HasMACCache || r.HasCounterCache {
		t.Fatal("baseline should have no metadata caches")
	}
	for _, lr := range r.Layers {
		if lr.Cycles < lr.ComputeCycles || lr.Cycles < lr.MemCycles {
			t.Fatalf("layer %s: cycles %d below max(compute %d, mem %d)",
				lr.Name, lr.Cycles, lr.ComputeCycles, lr.MemCycles)
		}
		if lr.ExtraBlocks != 0 {
			t.Fatalf("baseline layer %s has extra blocks", lr.Name)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), smallNet(), protect.Baseline, Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := Run(context.Background(), workload.Network{Name: "empty"}, protect.Baseline, DefaultConfig()); err == nil {
		t.Fatal("invalid network accepted")
	}
}

// The headline ordering of Figure 7: Baseline >= Seculator > TNPU >
// Secure(~) and GuardNN worst among the metadata-heavy designs.
func TestDesignOrdering(t *testing.T) {
	results, err := RunAll(context.Background(), smallNet(), protect.Designs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	perf := map[protect.Design]float64{}
	for _, r := range results {
		perf[r.Design] = r.Performance(results[0])
	}
	if perf[protect.Baseline] != 1.0 {
		t.Fatalf("baseline perf = %g", perf[protect.Baseline])
	}
	if !(perf[protect.Seculator] > perf[protect.TNPU]) {
		t.Errorf("Seculator (%.3f) must beat TNPU (%.3f)", perf[protect.Seculator], perf[protect.TNPU])
	}
	if !(perf[protect.TNPU] > perf[protect.GuardNN]) {
		t.Errorf("TNPU (%.3f) must beat GuardNN (%.3f)", perf[protect.TNPU], perf[protect.GuardNN])
	}
	if !(perf[protect.Seculator] > perf[protect.Secure]) {
		t.Errorf("Seculator (%.3f) must beat Secure (%.3f)", perf[protect.Seculator], perf[protect.Secure])
	}
	if perf[protect.Seculator] > 1.0 {
		t.Errorf("Seculator (%.3f) cannot beat the unprotected baseline", perf[protect.Seculator])
	}
}

// Figure 8 shape: Seculator adds no metadata traffic; TNPU and GuardNN do,
// with GuardNN the heaviest.
func TestTrafficShape(t *testing.T) {
	results, err := RunAll(context.Background(), smallNet(), protect.Designs(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := results[0]
	traf := map[protect.Design]float64{}
	for _, r := range results {
		traf[r.Design] = r.NormalizedTraffic(base)
	}
	if traf[protect.Seculator] != 1.0 {
		t.Errorf("Seculator traffic = %.3f, want exactly 1.0 (no metadata)", traf[protect.Seculator])
	}
	if !(traf[protect.GuardNN] > traf[protect.TNPU]) {
		t.Errorf("GuardNN traffic (%.3f) must exceed TNPU (%.3f)", traf[protect.GuardNN], traf[protect.TNPU])
	}
	if !(traf[protect.TNPU] > 1.0) {
		t.Errorf("TNPU traffic (%.3f) must exceed baseline", traf[protect.TNPU])
	}
	// Data traffic itself is identical across designs.
	for _, r := range results {
		if got := r.Traffic.ByKind(0); got != base.Traffic.ByKind(0) {
			t.Errorf("%s data traffic %d != baseline %d", r.Design, got, base.Traffic.ByKind(0))
		}
	}
}

// Figure 5 shape: in the Secure design, the MAC cache misses ~8x more often
// than the counter cache (one MAC line covers 8x fewer pixels than one
// counter line).
func TestCacheMissRatio(t *testing.T) {
	r, err := Run(context.Background(), smallNet(), protect.Secure, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasMACCache || !r.HasCounterCache {
		t.Fatal("secure design must expose both caches")
	}
	macMiss := r.MACCache.MissRate()
	ctrMiss := r.CounterCache.MissRate()
	if macMiss <= ctrMiss {
		t.Fatalf("MAC miss rate (%.3f) must exceed counter miss rate (%.3f)", macMiss, ctrMiss)
	}
	ratio := macMiss / ctrMiss
	if ratio < 4 || ratio > 16 {
		t.Errorf("MAC/counter miss ratio = %.1f, expected ~8x", ratio)
	}
}

// Paper Section 7.3: the paper reports ~16-20% speedup of Seculator over
// TNPU and ~37% over GuardNN on the five benchmarks. Assert the full
// benchmark suite lands in a generous band around those factors.
func TestPaperSpeedupBands(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark suite in -short mode")
	}
	cfg := DefaultConfig()
	var secTot, tnpuTot, gnnTot float64
	for _, n := range workload.All() {
		results, err := RunAll(context.Background(), n, []protect.Design{protect.Baseline, protect.TNPU, protect.GuardNN, protect.Seculator}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		base := results[0]
		tnpu := results[1].Performance(base)
		gnn := results[2].Performance(base)
		sec := results[3].Performance(base)
		secTot += sec
		tnpuTot += tnpu
		gnnTot += gnn
	}
	n := float64(len(workload.All()))
	secAvg, tnpuAvg, gnnAvg := secTot/n, tnpuTot/n, gnnTot/n

	if up := secAvg/tnpuAvg - 1; up < 0.08 || up > 0.35 {
		t.Errorf("Seculator speedup over TNPU = %.1f%%, paper reports ~16-20%%", up*100)
	}
	if up := secAvg/gnnAvg - 1; up < 0.20 || up > 0.60 {
		t.Errorf("Seculator speedup over GuardNN = %.1f%%, paper reports ~37%%", up*100)
	}
	// TNPU overhead vs baseline ~22%, i.e. perf ~0.82.
	if tnpuAvg < 0.70 || tnpuAvg > 0.92 {
		t.Errorf("TNPU normalized perf = %.3f, paper reports ~0.82", tnpuAvg)
	}
}

func TestSeculatorPlusEqualsSeculatorWithoutWidening(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Run(context.Background(), smallNet(), protect.Seculator, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), smallNet(), protect.SeculatorPlus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Traffic.Total() != b.Traffic.Total() {
		t.Fatal("Seculator+ without widening must match Seculator")
	}
}

func TestResultHelpers(t *testing.T) {
	r, err := Run(context.Background(), smallNet(), protect.Baseline, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Seconds(2.75e9); s <= 0 {
		t.Fatalf("Seconds = %g", s)
	}
	if p := r.Performance(r); p != 1.0 {
		t.Fatalf("self performance = %g", p)
	}
	zero := Result{}
	if zero.Performance(r) != 0 {
		t.Fatal("zero-cycle result should have 0 performance")
	}
}

func TestRunLayersSchedule(t *testing.T) {
	layers := []workload.Layer{
		{Name: "real1", Type: workload.Conv, C: 3, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
		// A decoy with an unrelated shape: RunLayers must accept it even
		// though it does not chain with real1.
		{Name: "decoy", Type: workload.Conv, C: 16, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1},
		{Name: "real2", Type: workload.Conv, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
	}
	r, err := RunLayers(context.Background(), "noisy", layers, protect.SeculatorPlus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Layers) != 3 || r.Cycles == 0 {
		t.Fatalf("RunLayers result: %d layers, %d cycles", len(r.Layers), r.Cycles)
	}
	if _, err := RunLayers(context.Background(), "empty", nil, protect.Baseline, DefaultConfig()); err == nil {
		t.Fatal("empty schedule accepted")
	}
	if _, err := RunLayers(context.Background(), "bad", layers, protect.Baseline, Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// RunLayers on a chained network must agree exactly with Run: the noise
// machinery reduces to the plain runner when no decoys are injected.
func TestRunLayersMatchesRun(t *testing.T) {
	net := smallNet()
	for _, d := range []protect.Design{protect.Baseline, protect.TNPU, protect.Seculator} {
		whole, err := Run(context.Background(), net, d, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sched, err := RunLayers(context.Background(), net.Name, net.Layers, d, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if whole.Cycles != sched.Cycles || whole.Traffic.Total() != sched.Traffic.Total() {
			t.Fatalf("%s: RunLayers diverges from Run: %d/%d cycles, %d/%d blocks",
				d, sched.Cycles, whole.Cycles, sched.Traffic.Total(), whole.Traffic.Total())
		}
	}
}

// Per-layer results must decompose the total exactly.
func TestLayerDecomposition(t *testing.T) {
	r, err := Run(context.Background(), smallNet(), protect.TNPU, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var cyc sim.Cycles
	var blocks uint64
	for _, l := range r.Layers {
		cyc = cyc.Add(l.Cycles)
		blocks += l.DataBlocks + l.ExtraBlocks
		if l.Utilization < 0 || l.Utilization > 1 {
			t.Fatalf("layer %s utilization %g out of range", l.Name, l.Utilization)
		}
	}
	if cyc != r.Cycles {
		t.Fatalf("layer cycles %d != total %d", cyc, r.Cycles)
	}
	if blocks != r.Traffic.Total() {
		t.Fatalf("layer blocks %d != traffic %d", blocks, r.Traffic.Total())
	}
}
