// Package runner executes a network on a simulated design: it maps each
// layer (sched), derives its tile-event stream (dataflow), charges compute
// time on the systolic array (npu), charges data and metadata traffic to
// the DRAM model (mem, protect), and combines them under double-buffered
// compute/memory overlap. Its outputs — cycles and per-class traffic — are
// the quantities behind Figures 4, 7, 8 and 9.
package runner

import (
	"context"
	"fmt"

	"seculator/internal/cache"
	"seculator/internal/dataflow"
	"seculator/internal/mem"
	"seculator/internal/npu"
	"seculator/internal/parallel"
	"seculator/internal/protect"
	"seculator/internal/resilience"
	"seculator/internal/sched"
	"seculator/internal/sim"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

// Config collects all model parameters.
type Config struct {
	NPU     npu.Config
	DRAM    mem.Config
	Protect protect.Params

	// NoOverlap disables double-buffered compute/memory overlap: layer
	// time becomes compute + memory instead of max(compute, memory).
	// Used by the overlap ablation study; off in the paper's system.
	NoOverlap bool

	// TraceFn, when non-nil, receives every data-tile transfer with its
	// resolved block address range — the bus-snooper's view, consumed by
	// the trace package. Metadata traffic is not traced (its addresses are
	// engine-internal).
	TraceFn func(layer int, kind sim.AccessKind, tns tensor.Kind, addr uint64, blocks int)
}

// DefaultConfig returns the Table 1 system.
func DefaultConfig() Config {
	return Config{
		NPU:     npu.DefaultConfig(),
		DRAM:    mem.DefaultConfig(),
		Protect: protect.DefaultParams(),
	}
}

// Validate checks every sub-config.
func (c Config) Validate() error {
	if err := c.NPU.Validate(); err != nil {
		return err
	}
	return c.DRAM.Validate()
}

// LayerResult is the per-layer outcome.
type LayerResult struct {
	Name          string
	Mapping       string
	ComputeCycles sim.Cycles
	MemCycles     sim.Cycles
	Cycles        sim.Cycles // max(compute, mem) + pipeline start
	DataBlocks    uint64
	ExtraBlocks   uint64 // metadata blocks added by the protection engine
	ExtraLatency  sim.Cycles
	Utilization   float64 // achieved fraction of peak MAC throughput
	MemoryBound   bool    // memory time dominated this layer
}

// Result is the outcome of one (network, design) simulation.
type Result struct {
	Network string
	Design  protect.Design

	Cycles  sim.Cycles
	Traffic mem.TrafficStats
	Layers  []LayerResult

	MACCache        cache.Stats
	HasMACCache     bool
	CounterCache    cache.Stats
	HasCounterCache bool
}

// Seconds returns the simulated wall time.
func (r Result) Seconds(freqHz float64) float64 { return r.Cycles.Seconds(freqHz) }

// Performance returns the paper's metric: the reciprocal of execution time,
// normalized so that `base` (typically the Baseline result for the same
// network) is 1.0.
func (r Result) Performance(base Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// NormalizedTraffic returns the design's total DRAM blocks relative to base.
func (r Result) NormalizedTraffic(base Result) float64 {
	return sim.Ratio(r.Traffic.Total(), base.Traffic.Total())
}

// Run simulates one network on one design. ctx cancels the simulation
// between layers; a nil ctx means context.Background(). No panic escapes.
func Run(ctx context.Context, n workload.Network, d protect.Design, cfg Config) (res Result, err error) {
	defer resilience.Recover(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	if err := n.Validate(); err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	choices, err := sched.MapNetwork(n, cfg.NPU, cfg.DRAM)
	if err != nil {
		return Result{}, err
	}
	engine, err := protect.New(d, cfg.Protect)
	if err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	dram, err := mem.New(cfg.DRAM)
	if err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}

	res = Result{Network: n.Name, Design: d, Layers: make([]LayerResult, 0, len(choices))}
	var alloc addressAllocator
	prevOfmapBase := alloc.reserve(4096) // layer-0 inputs written by the host

	for i, choice := range choices {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		li := layerInfo(i, choice, &alloc, prevOfmapBase)
		prevOfmapBase = li.OfmapBase

		lr, err := runLayer(choice, li, engine, dram, cfg)
		if err != nil {
			return Result{}, fmt.Errorf("runner: %s layer %d (%s): %w", n.Name, i, choice.Layer.Name, err)
		}
		res.Cycles = res.Cycles.Add(lr.Cycles)
		res.Layers = append(res.Layers, lr)
	}

	res.Traffic = dram.Traffic()
	res.MACCache, res.HasMACCache = engine.MACCacheStats()
	res.CounterCache, res.HasCounterCache = engine.CounterCacheStats()
	return res, nil
}

// addressAllocator hands out non-overlapping block regions.
type addressAllocator struct{ next uint64 }

func (a *addressAllocator) reserve(blocks uint64) uint64 {
	base := a.next
	a.next += blocks
	return base
}

// layerInfo lays the layer's tensors out in the block address space. The
// ifmap region is the previous layer's ofmap region, so metadata cache
// lines persist across the producer/consumer boundary exactly as they
// would in hardware.
func layerInfo(idx int, c sched.Choice, alloc *addressAllocator, prevOfmapBase uint64) protect.LayerInfo {
	m := c.Mapping
	spatial := m.Bound(dataflow.LoopS)
	ofBlocks := uint64(m.Bound(dataflow.LoopK)*spatial) * uint64(m.OfmapTileBlocks)
	wBlocks := uint64(m.Bound(dataflow.LoopK)*m.Bound(dataflow.LoopC)) * uint64(m.WeightTileBlocks)
	return protect.LayerInfo{
		Index:        idx,
		Mapping:      m,
		IfmapBase:    prevOfmapBase,
		OfmapBase:    alloc.reserve(ofBlocks),
		WeightBase:   alloc.reserve(wBlocks),
		SpatialTiles: spatial,
	}
}

func runLayer(c sched.Choice, li protect.LayerInfo, engine protect.Engine,
	dram *mem.DRAM, cfg Config) (LayerResult, error) {

	compute := cfg.NPU.LayerComputeCycles(c.ComputePasses, c.PassPixels, c.KT, c.PassDepth)

	engine.BeginLayer(li)
	var dataBlocks, extraBlocks uint64
	var extraLatency sim.Cycles
	err := dataflow.Generate(c.Mapping, func(e dataflow.Event) bool {
		dram.Record(e.Kind, sim.DataTraffic, e.Blocks)
		dataBlocks += uint64(e.Blocks)
		if cfg.TraceFn != nil {
			addr, n := li.BlockRange(e)
			cfg.TraceFn(li.Index, e.Kind, e.Tensor, addr, n)
		}
		cost := engine.OnEvent(e)
		chargeCost(dram, cost)
		extraBlocks += cost.ExtraBlocks()
		extraLatency = extraLatency.Add(cost.Latency)
		return true
	})
	if err != nil {
		return LayerResult{}, err
	}
	end := engine.EndLayer()
	chargeCost(dram, end)
	extraBlocks += end.ExtraBlocks()
	extraLatency = extraLatency.Add(end.Latency)

	// Memory time: one pipeline-start latency, then bandwidth-limited
	// streaming of every block, plus the serialized protection latencies.
	totalBlocks := dataBlocks + extraBlocks
	memCycles := dram.ServiceTime(int(totalBlocks)).Add(extraLatency)

	cycles := compute.Max(memCycles)
	if cfg.NoOverlap {
		cycles = compute.Add(memCycles)
	}
	util := 0.0
	if cycles > 0 {
		ideal := float64(c.Layer.MACs()) / float64(cfg.NPU.PEs())
		util = ideal / float64(cycles)
	}
	return LayerResult{
		Name:          c.Layer.Name,
		Mapping:       c.Mapping.Name,
		ComputeCycles: compute,
		MemCycles:     memCycles,
		Cycles:        cycles,
		DataBlocks:    dataBlocks,
		ExtraBlocks:   extraBlocks,
		ExtraLatency:  extraLatency,
		Utilization:   util,
		MemoryBound:   memCycles >= compute,
	}, nil
}

func chargeCost(dram *mem.DRAM, c protect.Cost) {
	for t := range c.ReadBlocks {
		dram.Record(sim.Read, sim.Traffic(t), int(c.ReadBlocks[t]))
		dram.Record(sim.Write, sim.Traffic(t), int(c.WriteBlocks[t]))
	}
}

// RunAll simulates a network across a set of designs concurrently (one
// worker-pool task per design), returning results in designs order. Each
// simulation owns its engine and DRAM, so the tasks share nothing; results
// come from the memoizing simulation cache when the point was already run.
// With a TraceFn configured, designs run sequentially instead — the trace
// callback sees one interleaving-free address stream per design.
func RunAll(ctx context.Context, n workload.Network, designs []protect.Design, cfg Config) ([]Result, error) {
	workers := 0
	if cfg.TraceFn != nil {
		workers = 1
	}
	return parallel.Map(ctx, workers, designs, func(ctx context.Context, d protect.Design) (Result, error) {
		return RunCached(ctx, n, d, cfg)
	})
}

// RunLayers simulates an arbitrary layer sequence that need not chain as a
// network — the execution mode of Seculator+'s dummy-network interspersing,
// where decoy layers with unrelated shapes run between the real ones. Each
// layer is validated individually; activation regions are still allocated
// producer/consumer style so the address trace looks like one execution.
// ctx cancels between layers; no panic escapes.
func RunLayers(ctx context.Context, name string, layers []workload.Layer, d protect.Design, cfg Config) (res Result, err error) {
	defer resilience.Recover(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	if len(layers) == 0 {
		return Result{}, &resilience.ConfigError{Err: fmt.Errorf("runner: no layers to run")}
	}
	engine, err := protect.New(d, cfg.Protect)
	if err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	dram, err := mem.New(cfg.DRAM)
	if err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}

	res = Result{Network: name, Design: d, Layers: make([]LayerResult, 0, len(layers))}
	var alloc addressAllocator
	prevOfmapBase := alloc.reserve(4096)

	for i, l := range layers {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		choice, err := sched.Map(l, cfg.NPU, cfg.DRAM)
		if err != nil {
			return Result{}, fmt.Errorf("runner: layer %d (%s): %w", i, l.Name, err)
		}
		li := layerInfo(i, choice, &alloc, prevOfmapBase)
		prevOfmapBase = li.OfmapBase

		lr, err := runLayer(choice, li, engine, dram, cfg)
		if err != nil {
			return Result{}, fmt.Errorf("runner: layer %d (%s): %w", i, l.Name, err)
		}
		res.Cycles = res.Cycles.Add(lr.Cycles)
		res.Layers = append(res.Layers, lr)
	}

	res.Traffic = dram.Traffic()
	res.MACCache, res.HasMACCache = engine.MACCacheStats()
	res.CounterCache, res.HasCounterCache = engine.CounterCacheStats()
	return res, nil
}
