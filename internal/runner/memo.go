package runner

import (
	"context"
	"errors"
	"fmt"

	"seculator/internal/parallel"
	"seculator/internal/protect"
	"seculator/internal/workload"
)

// simCache memoizes whole-simulation results across experiments: Fig4 and
// Fig5 share every point, Fig7/Fig8 re-run four of Fig4's designs, and the
// sweeps re-run the base configuration once per knob. The cache is keyed
// by a (network, design, config) fingerprint, so any experiment that asks
// for an already-simulated point gets the stored Result instead of a
// re-simulation.
var simCache = parallel.NewMemo[string, Result]()

// fingerprint renders the full simulation input as a stable string key.
// The network fingerprint includes every layer field, so two networks
// that merely share a name cannot collide; the config fingerprint covers
// every knob of the NPU, DRAM and protection models.
func fingerprint(n workload.Network, d protect.Design, cfg Config) string {
	cfg.TraceFn = nil // never part of the key; traced runs bypass the cache
	return fmt.Sprintf("%+v|%d|%+v", n, d, cfg)
}

// RunCached is Run behind the memoizing simulation cache. The returned
// Result is shared with every other caller of the same point: treat it as
// immutable. Runs with a TraceFn bypass the cache — their value is the
// trace side channel, which a cache hit would silence.
func RunCached(ctx context.Context, n workload.Network, d protect.Design, cfg Config) (Result, error) {
	if cfg.TraceFn != nil {
		return Run(ctx, n, d, cfg)
	}
	key := fingerprint(n, d, cfg)
	res, err := simCache.Do(key, func() (Result, error) {
		return Run(ctx, n, d, cfg)
	})
	// A cancellation is a property of this call's context, not of the
	// simulation point: evict it so a later caller re-simulates.
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		simCache.Forget(key)
	}
	return res, err
}

// CacheStats returns the simulation cache's hit/miss counters.
func CacheStats() parallel.MemoStats { return simCache.Stats() }

// ResetCache discards every memoized simulation (tests, long-lived hosts).
func ResetCache() { simCache.Reset() }

// ResetCacheStats zeroes the hit/miss counters without evicting any cached
// simulation — the windowing hook for long-running servers that report
// cache effectiveness per scrape interval.
func ResetCacheStats() { simCache.ResetStats() }
