package runner

import (
	"context"
	"reflect"
	"testing"

	"seculator/internal/protect"
	"seculator/internal/sim"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

func memoNet(name string) workload.Network {
	return workload.Network{
		Name: name,
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 3, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: workload.Conv, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
		},
	}
}

// TestRunCachedIdentity: a warm cache hit returns exactly the cold run's
// result, and the counters record the reuse.
func TestRunCachedIdentity(t *testing.T) {
	ResetCache()
	defer ResetCache()
	net := memoNet("memo-identity")
	cfg := DefaultConfig()

	cold, err := RunCached(context.Background(), net, protect.Seculator, cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(context.Background(), net, protect.Seculator, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, direct) {
		t.Fatal("cached cold run differs from a direct Run")
	}
	warm, err := RunCached(context.Background(), net, protect.Seculator, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm cache hit differs from cold run")
	}
	s := CacheStats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 miss + 1 hit", s)
	}
}

// TestRunCachedKeySensitivity: distinct designs, configs and layer shapes
// produce distinct cache entries even when the network name matches.
func TestRunCachedKeySensitivity(t *testing.T) {
	ResetCache()
	defer ResetCache()
	cfg := DefaultConfig()
	net := memoNet("memo-keys")

	a, err := RunCached(context.Background(), net, protect.Seculator, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCached(context.Background(), net, protect.TNPU, cfg); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.DRAM.BlocksPerCycle *= 2
	b, err := RunCached(context.Background(), net, protect.Seculator, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == b.Cycles {
		t.Fatal("bandwidth change did not change the cached result — key too weak")
	}
	// Same name, different layers: must not collide.
	other := memoNet("memo-keys")
	other.Layers[1].K = 16
	c, err := RunCached(context.Background(), other, protect.Seculator, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Layers, c.Layers) {
		t.Fatal("networks sharing a name collided in the cache")
	}
	if s := CacheStats(); s.Misses != 4 {
		t.Fatalf("cache stats = %+v, want 4 distinct misses", s)
	}
}

// TestRunCachedTraceBypass: runs with a TraceFn must re-simulate every
// time — the trace callback is the product.
func TestRunCachedTraceBypass(t *testing.T) {
	ResetCache()
	defer ResetCache()
	net := memoNet("memo-trace")
	cfg := DefaultConfig()
	events := 0
	cfg.TraceFn = func(int, sim.AccessKind, tensor.Kind, uint64, int) { events++ }
	for i := 0; i < 2; i++ {
		if _, err := RunCached(context.Background(), net, protect.Baseline, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if events == 0 {
		t.Fatal("trace callback never fired")
	}
	if s := CacheStats(); s.Misses != 0 && s.Hits != 0 {
		t.Fatalf("traced runs touched the cache: %+v", s)
	}
}

// TestRunAllParallelMatchesSerial: RunAll produces identical results in
// designs order at any worker count.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	ResetCache()
	defer ResetCache()
	net := memoNet("runall-par")
	cfg := DefaultConfig()
	designs := protect.Designs()

	var want []Result
	for _, d := range designs {
		r, err := Run(context.Background(), net, d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	got, err := RunAll(context.Background(), net, designs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel RunAll differs from serial per-design Run")
	}
	for i, d := range designs {
		if got[i].Design != d {
			t.Fatalf("result %d is design %v, want %v — ordering lost", i, got[i].Design, d)
		}
	}
}
