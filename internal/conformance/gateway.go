package conformance

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seculator"
	"seculator/internal/gateway"
	"seculator/internal/host"
	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

// ---------------------------------------------------------------------------
// Oracle 6: attack detection through the replica-sharding gateway.
// ---------------------------------------------------------------------------

// CheckGatewayAttack replays the command-channel MITM through a 2-replica
// gateway fleet and demands the same zero-FN/zero-FP detection the
// single-process attack oracle proves, with one property only the fleet
// can exhibit: a session migrated mid-attack (hot reload removes its home
// from the ring, so the gateway live-migrates it on sealed snapshots)
// must still breach-latch on its *new* replica — migration transports the
// MAC registers and replay window, never launders an attacker's state.
//
//   - honest traffic through the gateway is a transparent proxy: zero
//     errors and an output checksum equal to the local reference;
//   - an attacked inference is detected (breach-class error) wherever the
//     session lives, and the breach latch evicts it fleet-wide (the
//     gateway's vault drops it too);
//   - after the attack stops, honest traffic is clean again.
func CheckGatewayAttack(cfg Config) error {
	var attacking atomic.Bool
	lc, err := gateway.StartLocal(gateway.LocalOptions{
		Replicas: 2,
		ServeOptions: func(int) serve.Options {
			return serve.Options{
				Tenants: []serve.TenantConfig{
					{Key: "k-good", Name: "good", Weight: 1, RateRPS: 10000, Burst: 1000, MaxPending: 64},
					{Key: "k-evil", Name: "evil", Weight: 1, RateRPS: 10000, Burst: 1000, MaxPending: 64},
				},
				// Generous quarantine: this oracle isolates detection and
				// migration; the breaker dynamics have their own campaign.
				Quarantine: serve.QuarantineConfig{
					ThrottleAfter: 50, OpenAfter: 100, Window: time.Minute,
					ThrottleRPS: 10000, ThrottleBurst: 10000,
				},
				InterceptFor: func(tenant string) host.Intercept {
					if tenant == "evil" && attacking.Load() {
						return gatewayMITM()
					}
					return nil
				},
			}
		},
	})
	if err != nil {
		return fmt.Errorf("gateway: cluster: %w", err)
	}
	defer lc.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	good := client.New(lc.GatewayURL, nil)
	good.SetAPIKey("k-good")
	evil := client.New(lc.GatewayURL, nil)
	evil.SetAPIKey("k-evil")

	// Honest phase: the gateway must be a transparent proxy — the output
	// checksum through two hops equals the local reference computation.
	net := serve.MiniNet()
	in, ws := seculator.RandomModel(net, cfg.Seed)
	golden, err := seculator.ReferenceInference(net, in, ws)
	if err != nil {
		return fmt.Errorf("gateway: reference: %w", err)
	}
	honest, err := good.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: cfg.Seed})
	if err != nil {
		return fmt.Errorf("gateway: honest infer rejected (false positive): %w", err)
	}
	if want := serve.OutputSum(golden); honest.OutputSum != want {
		return fmt.Errorf("gateway: proxied checksum %#x, reference %#x", honest.OutputSum, want)
	}

	// The adversary's session accumulates honest state first — the state
	// the mid-attack migration must transport without laundering.
	sess, err := evil.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		return fmt.Errorf("gateway: evil session: %w", err)
	}
	id := sess.SessionID
	if _, err := evil.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: cfg.Seed + 1, Session: id}); err != nil {
		return fmt.Errorf("gateway: evil pre-attack infer rejected (false positive): %w", err)
	}
	home := lc.Gateway.Locations()[id]
	if home == "" {
		return fmt.Errorf("gateway: evil session not vaulted")
	}

	attacking.Store(true)

	// Zero FN, plain path: a fresh attacked session is detected wherever
	// the gateway homes it.
	fresh, err := evil.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		return fmt.Errorf("gateway: fresh evil session: %w", err)
	}
	_, err = evil.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: cfg.Seed + 2, Session: fresh.SessionID})
	if err := wantBreach(err, "fresh-session attack"); err != nil {
		return err
	}

	// Mid-attack migration: remove the session's home from the ring. The
	// reload live-migrates it to the survivor on sealed snapshots.
	var survivor *gateway.ReplicaConfig
	for _, rep := range lc.Replicas {
		if rep.Name != home {
			survivor = &gateway.ReplicaConfig{Name: rep.Name, URL: rep.URL}
			break
		}
	}
	if _, err := lc.Gateway.Reload(gateway.Config{Replicas: []gateway.ReplicaConfig{*survivor}}); err != nil {
		return fmt.Errorf("gateway: mid-attack reload: %w", err)
	}
	if moved := lc.Gateway.Locations()[id]; moved != survivor.Name {
		return fmt.Errorf("gateway: session not migrated off %s (home now %q)", home, moved)
	}

	// The migrated session must still latch the breach on its new replica:
	// detection, eviction, and the gateway vault dropping it.
	_, err = evil.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: cfg.Seed + 3, Session: id})
	if err := wantBreach(err, "post-migration attack"); err != nil {
		return err
	}
	var ae *client.APIError
	if errors.As(err, &ae) && !ae.Body.SessionEvicted {
		return fmt.Errorf("gateway: post-migration breach did not evict the session")
	}
	if h := lc.Gateway.Locations()[id]; h != "" {
		return fmt.Errorf("gateway: vault still homes breached session on %s", h)
	}
	breaches, err := scrapeBreaches(ctx, survivor.URL, "evil")
	if err != nil {
		return fmt.Errorf("gateway: survivor scrape: %w", err)
	}
	if breaches < 1 {
		return fmt.Errorf("gateway: survivor %s attributes no breach to evil (got %v)", survivor.Name, breaches)
	}

	// Recovery: honest traffic through the shrunken fleet stays clean.
	attacking.Store(false)
	if _, err := good.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: cfg.Seed + 4}); err != nil {
		return fmt.Errorf("gateway: honest infer after attack rejected (false positive): %w", err)
	}
	return nil
}

// wantBreach demands a breach-class rejection: the integrity, freshness or
// channel classes the VN machinery raises. nil or any other class is a
// false negative (or a misclassified detection).
func wantBreach(err error, what string) error {
	if err == nil {
		return fmt.Errorf("gateway: %s undetected (false negative)", what)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) {
		return fmt.Errorf("gateway: %s raised a non-API error: %w", what, err)
	}
	switch ae.Body.Class {
	case serve.ClassIntegrity, serve.ClassFreshness, serve.ClassChannel:
		return nil
	}
	return fmt.Errorf("gateway: %s raised class %q, want a breach class", what, ae.Body.Class)
}

// scrapeBreaches reads one replica's tenant breach counter directly from
// its /metrics — the fleet-side evidence the latch landed where the
// session lives now.
func scrapeBreaches(ctx context.Context, replicaURL, tenant string) (float64, error) {
	scrape, err := client.New(replicaURL, nil).Metrics(ctx)
	if err != nil {
		return 0, err
	}
	needle := fmt.Sprintf("seculator_serve_tenant_breaches_total{tenant=%q}", tenant)
	for _, line := range strings.Split(scrape, "\n") {
		if rest, ok := strings.CutPrefix(line, needle); ok {
			return strconv.ParseFloat(strings.TrimSpace(rest), 64)
		}
	}
	return 0, nil
}

// gatewayMITM is the command-channel man-in-the-middle (the same splice
// the chaos campaigns mount): capture the layer-2 packet, replay it over
// layer 4 — a guaranteed version-number breach downstream.
func gatewayMITM() host.Intercept {
	var mu sync.Mutex
	var captured *host.Packet
	return func(layer int, p *host.Packet) {
		mu.Lock()
		defer mu.Unlock()
		switch layer {
		case 2:
			cp := *p
			cp.Payload = append([]byte(nil), p.Payload...)
			captured = &cp
		case 4:
			if captured != nil {
				*p = *captured
			}
		}
	}
}
