package conformance

import "strings"

// Shrink minimizes a failing config: it repeatedly applies the first
// structure-reducing mutation that keeps the check failing, until no
// mutation helps (greedy fixpoint, deterministic, bounded). The result is
// the config embedded in the repro line, so smaller is directly better for
// whoever has to debug it.
func Shrink(cfg Config, check func(Config) error) Config {
	cur := cfg
	for round := 0; round < 64; round++ {
		improved := false
		for _, cand := range shrinkCandidates(cur) {
			if equalConfig(cand, cur) || !smaller(cand, cur) {
				continue
			}
			if check(cand) != nil {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			return cur
		}
	}
	return cur
}

func equalConfig(a, b Config) bool { return a.ReproJSONEqual(b) }

// ReproJSONEqual compares two configs by their repro payloads.
func (c Config) ReproJSONEqual(o Config) bool {
	return (&Failure{Config: c}).ReproLine() == (&Failure{Config: o}).ReproLine()
}

// weight scores a config's size so the shrinker only ever moves downhill
// (guaranteeing termination even with compound mutations).
func weight(c Config) int {
	w := c.Mapping.AlphaHW + c.Mapping.AlphaC + c.Mapping.AlphaK +
		c.Mapping.IfBlocks + c.Mapping.OfBlocks + c.Mapping.WBlocks +
		len(c.Mapping.Order) + c.Scenario.Tiles + c.Scenario.Versions +
		c.Scenario.BlocksPerTile + c.Attack.Block + c.Attack.Block2 +
		c.Attack.Byte + c.Attack.Bit
	if c.Mapping.Resident {
		w++
	}
	if c.Mapping.PerChannel {
		w++
	}
	for _, l := range c.Net.Layers {
		w += 8 + l.C + l.H + l.W + l.K + l.R + l.S + l.Stride
		if l.Valid {
			w++
		}
	}
	return w
}

func smaller(a, b Config) bool { return weight(a) < weight(b) }

// halve steps an integer toward a floor without jumping past intermediate
// values that may be load-bearing (v, v/2, …, floor).
func halve(v, floor int) int {
	if v <= floor {
		return v
	}
	h := v / 2
	if h < floor {
		h = floor
	}
	return h
}

// shrinkCandidates proposes one-step reductions, cheapest-to-check first.
func shrinkCandidates(c Config) []Config {
	var out []Config
	add := func(m Config) { out = append(out, m) }

	// Attack coordinates toward zero.
	if c.Attack.Block != 0 || c.Attack.Block2 != 0 || c.Attack.Byte != 0 || c.Attack.Bit != 0 {
		m := c
		m.Attack.Block = halve(c.Attack.Block, 0)
		m.Attack.Block2 = halve(c.Attack.Block2, 0)
		m.Attack.Byte = halve(c.Attack.Byte, 0)
		m.Attack.Bit = 0
		add(m)
	}

	// Scenario toward the minimal legal shape.
	if c.Scenario.Tiles > 2 || c.Scenario.Versions > 2 || c.Scenario.BlocksPerTile > 1 {
		m := c
		m.Scenario.Tiles = halve(c.Scenario.Tiles, 2)
		m.Scenario.Versions = halve(c.Scenario.Versions, 2)
		m.Scenario.BlocksPerTile = halve(c.Scenario.BlocksPerTile, 1)
		add(m)
	}

	// Mapping: flags off, tile blocks down, each loop bound down (removing
	// the loop from the order once its bound hits 1).
	if c.Mapping.Resident {
		m := c
		m.Mapping.Resident = false
		add(m)
	}
	if c.Mapping.PerChannel {
		m := c
		m.Mapping.PerChannel = false
		add(m)
	}
	if c.Mapping.IfBlocks > 0 {
		m := c
		m.Mapping.IfBlocks = halve(c.Mapping.IfBlocks, 0)
		add(m)
	}
	if c.Mapping.WBlocks > 0 {
		m := c
		m.Mapping.WBlocks = halve(c.Mapping.WBlocks, 0)
		if m.Mapping.WBlocks == 0 {
			m.Mapping.Resident = false
		}
		add(m)
	}
	if c.Mapping.OfBlocks > 1 {
		m := c
		m.Mapping.OfBlocks = halve(c.Mapping.OfBlocks, 1)
		add(m)
	}
	for _, v := range []struct {
		get func(*MapSpec) *int
		ch  byte
	}{
		{func(s *MapSpec) *int { return &s.AlphaHW }, 'S'},
		{func(s *MapSpec) *int { return &s.AlphaC }, 'C'},
		{func(s *MapSpec) *int { return &s.AlphaK }, 'K'},
	} {
		if *v.get(&c.Mapping) > 1 {
			m := c
			p := v.get(&m.Mapping)
			*p = halve(*p, 1)
			if *p == 1 {
				// Two variants: drop the now-bound-1 loop, or keep it
				// listed (legal, and sometimes the failure needs it).
				drop := m
				drop.Mapping.Order = strings.ReplaceAll(m.Mapping.Order, string(v.ch), "")
				add(drop)
			}
			add(m)
		} else if strings.ContainsRune(c.Mapping.Order, rune(v.ch)) {
			// Bound-1 loop listed in the order: try dropping it.
			m := c
			m.Mapping.Order = strings.ReplaceAll(c.Mapping.Order, string(v.ch), "")
			add(m)
		}
	}

	// Network: drop trailing layers, then shrink the first layer's dims.
	// (Dropping from the tail keeps the chain valid; dim shrinks may break
	// chaining, which Validate catches — the oracle then skips, the check
	// passes, and the shrinker discards the candidate.)
	if len(c.Net.Layers) > 1 {
		m := c
		m.Net.Layers = append([]LayerSpec(nil), c.Net.Layers[:len(c.Net.Layers)-1]...)
		add(m)
	}
	if len(c.Net.Layers) > 0 {
		l := c.Net.Layers[0]
		for _, mut := range []func(*LayerSpec){
			func(l *LayerSpec) { l.H = halve(l.H, 1); l.W = halve(l.W, 1) },
			func(l *LayerSpec) { l.C = halve(l.C, 1) },
			func(l *LayerSpec) { l.K = halve(l.K, 1) },
			func(l *LayerSpec) { l.R = halve(l.R, 1); l.S = halve(l.S, 1) },
			func(l *LayerSpec) { l.Stride = 1 },
			func(l *LayerSpec) { l.Valid = false },
		} {
			m := c
			m.Net.Layers = append([]LayerSpec(nil), c.Net.Layers...)
			nl := l
			mut(&nl)
			if nl == l {
				continue
			}
			m.Net.Layers[0] = nl
			add(m)
		}
	}
	return out
}
