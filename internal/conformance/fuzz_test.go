package conformance

import (
	"strings"
	"testing"

	"seculator/internal/attack"
)

// orderPerms are the six permutations of the three tile loops.
var orderPerms = []string{"SCK", "SKC", "CSK", "CKS", "KSC", "KCS"}

// mapSpecFromFuzz decodes raw fuzz bytes into a bounded MapSpec. Every
// input maps to some spec (possibly structurally invalid — CheckVN skips
// those), and the bounds are clamped small enough that one enumeration
// stays trivially cheap.
func mapSpecFromFuzz(reuse, orderSel, aHW, aC, aK, ifb, ofb, wb, flags uint8) MapSpec {
	s := MapSpec{
		Reuse:    int(reuse % 3),
		AlphaHW:  1 + int(aHW%6),
		AlphaC:   1 + int(aC%6),
		AlphaK:   1 + int(aK%6),
		IfBlocks: int(ifb % 4),
		OfBlocks: 1 + int(ofb%4),
		WBlocks:  int(wb % 4),
	}
	s.Resident = flags&1 != 0 && s.WBlocks > 0
	s.PerChannel = flags&2 != 0
	perm := orderPerms[int(orderSel)%len(orderPerms)]
	bounds := map[byte]int{'S': s.AlphaHW, 'C': s.AlphaC, 'K': s.AlphaK}
	var b strings.Builder
	for i := 0; i < len(perm); i++ {
		// flags bits 2–4 drop bound-1 loops from the order; loops with
		// bound > 1 must stay or the mapping is invalid and gets skipped.
		if bounds[perm[i]] > 1 || flags&(4<<i) == 0 {
			b.WriteByte(perm[i])
		}
	}
	s.Order = b.String()
	return s
}

// FuzzVNMasterEquation fuzzes the VN oracle: for every reachable mapping
// the ⟨η,κ,ρ⟩ FSM replay, the first-read predicates, the triplet round
// trip, and the analytic traffic estimate must agree with the enumerated
// event stream.
func FuzzVNMasterEquation(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(1), uint8(0), uint8(1), uint8(0))
	f.Add(uint8(2), uint8(5), uint8(2), uint8(1), uint8(1), uint8(0), uint8(1), uint8(2), uint8(3))
	f.Add(uint8(1), uint8(3), uint8(4), uint8(1), uint8(3), uint8(2), uint8(2), uint8(0), uint8(2))
	f.Add(uint8(0), uint8(2), uint8(0), uint8(1), uint8(0), uint8(1), uint8(3), uint8(1), uint8(28))
	f.Fuzz(func(t *testing.T, reuse, orderSel, aHW, aC, aK, ifb, ofb, wb, flags uint8) {
		ms := mapSpecFromFuzz(reuse, orderSel, aHW, aC, aK, ifb, ofb, wb, flags)
		if err := CheckVN(ms); err != nil {
			cfg := Generate(0)
			cfg.Mapping = ms
			t.Fatalf("%v\nrepro: %s", err, (&Failure{Seed: 0, Oracle: OracleVN, Config: cfg}).ReproLine())
		}
	})
}

// FuzzSchemeEquivalence fuzzes one detection-matrix row at a random
// scenario shape: all five schemes must agree on honest plaintexts and
// split exactly into silently-corrupting Baseline vs. detecting designs.
func FuzzSchemeEquivalence(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint8(4), uint8(1))
	f.Add(uint8(2), uint8(2), uint8(1), uint8(0))
	f.Add(uint8(7), uint8(5), uint8(3), uint8(4))
	f.Fuzz(func(t *testing.T, tiles, versions, bpt, atkSel uint8) {
		scn := attack.Scenario{
			Tiles:         2 + int(tiles%7),
			Versions:      2 + int(versions%5),
			BlocksPerTile: 1 + int(bpt%4),
			Secret:        0x5ec0_1a70,
			BootRandom:    uint64(tiles)<<8 | uint64(versions) + 1,
		}
		atks := attack.MatrixAttacks()
		atk := atks[int(atkSel)%len(atks)]
		if err := CheckMatrixRow(scn, atk); err != nil {
			t.Fatalf("scenario %+v: %v", scn, err)
		}
	})
}

// FuzzAttackDetection fuzzes the attack oracle end to end: a randomized
// mutation (tamper / swap / splice / stale replay) against both the
// functional scenario and the full secure executor must always be detected,
// and the honest runs must always pass.
func FuzzAttackDetection(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(1), uint8(9), uint8(5))
	f.Add(int64(17), uint8(1), uint8(3), uint8(7), uint8(0), uint8(0))
	f.Add(int64(123), uint8(4), uint8(200), uint8(14), uint8(63), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, kind, blockSel, block2Sel, byteSel, bitSel uint8) {
		cfg := Generate(seed)
		cfg.Attack = AttackSpec{
			Kind:   int(kind % atkKinds),
			Block:  int(blockSel),
			Block2: int(block2Sel),
			Byte:   int(byteSel % 64),
			Bit:    int(bitSel % 8),
		}
		if err := CheckAttackDetection(cfg); err != nil {
			t.Fatalf("%v\nrepro: %s", err, (&Failure{Seed: seed, Oracle: OracleAttack, Config: cfg}).ReproLine())
		}
	})
}
