package conformance

import (
	"strings"
	"testing"
)

// TestSeededTrials is the in-repo slice of the CI conformance job: every
// oracle must pass on a block of consecutive seeds. The CLI runs the full
// 200; -short keeps the unit-test suite fast.
func TestSeededTrials(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 12
	}
	for _, f := range Run(1, n, nil) {
		t.Errorf("%s", f.Error())
	}
}

// TestSingleBitTamperAlwaysDetected pins the acceptance criterion directly:
// a single-bit ciphertext tamper at a randomized position in a randomized
// config is detected in 100% of 100 trials.
func TestSingleBitTamperAlwaysDetected(t *testing.T) {
	trials := 100
	if testing.Short() {
		trials = 20
	}
	misses := 0
	for i := 0; i < trials; i++ {
		cfg := Generate(int64(1000 + i))
		cfg.Attack.Kind = AtkTamperOutput
		if err := CheckAttackDetection(cfg); err != nil {
			t.Errorf("seed %d: %v", cfg.Seed, err)
			misses++
		}
	}
	if misses != 0 {
		t.Fatalf("%d/%d tamper trials missed detection", misses, trials)
	}
}

// TestReproRoundTrip: a failure's one-line repro must parse back to the
// exact same config and oracle.
func TestReproRoundTrip(t *testing.T) {
	cfg := Generate(42)
	f := &Failure{Seed: 42, Oracle: OracleVN, Config: cfg}
	line := f.ReproLine()
	if !strings.HasPrefix(line, "seed=42 oracle=vn config={") {
		t.Fatalf("unexpected repro line: %s", line)
	}
	got, oracle, err := ParseRepro(line)
	if err != nil {
		t.Fatal(err)
	}
	if oracle != OracleVN {
		t.Fatalf("oracle = %q", oracle)
	}
	if !got.ReproJSONEqual(cfg) {
		t.Fatalf("round trip changed config:\n  in:  %+v\n  out: %+v", cfg, got)
	}
	if _, _, err := ParseRepro("garbage"); err == nil {
		t.Fatal("garbage repro line parsed")
	}
	if _, _, err := ParseRepro("seed=1 oracle=vn config={broken"); err == nil {
		t.Fatal("broken JSON parsed")
	}
}

// TestGenerateDeterministic: the same seed must always produce the same
// config — the property every repro line depends on.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		if !Generate(seed).ReproJSONEqual(Generate(seed)) {
			t.Fatalf("seed %d is not deterministic", seed)
		}
	}
}

// TestGeneratedConfigsAreValid: generated mappings and networks must pass
// their own validators — the harness is about valid-but-odd configs, so an
// invalid one means lost coverage.
func TestGeneratedConfigsAreValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		cfg := Generate(seed)
		if err := cfg.Mapping.Mapping().Validate(); err != nil {
			t.Errorf("seed %d: invalid mapping %+v: %v", seed, cfg.Mapping, err)
		}
		net := cfg.Net.Network()
		if err := net.Validate(); err != nil {
			t.Errorf("seed %d: invalid network %+v: %v", seed, cfg.Net, err)
		}
		if cfg.Scenario.Tiles < 2 || cfg.Scenario.Versions < 2 || cfg.Scenario.BlocksPerTile < 1 {
			t.Errorf("seed %d: degenerate scenario %+v", seed, cfg.Scenario)
		}
	}
}

// TestShrinkerMinimizes: shrinking against a predicate that only needs one
// feature must strip everything else down to floors, stay deterministic,
// and never return a passing config.
func TestShrinkerMinimizes(t *testing.T) {
	cfg := Generate(7)
	pred := func(c Config) error {
		if len(c.Net.Layers) > 0 {
			return errTest
		}
		return nil
	}
	small := Shrink(cfg, pred)
	if pred(small) == nil {
		t.Fatal("shrinker returned a passing config")
	}
	if len(small.Net.Layers) != 1 {
		t.Fatalf("net not minimized: %d layers", len(small.Net.Layers))
	}
	if small.Scenario.Tiles != 2 || small.Scenario.Versions != 2 || small.Scenario.BlocksPerTile != 1 {
		t.Fatalf("scenario not minimized: %+v", small.Scenario)
	}
	if w := weight(small); w >= weight(cfg) {
		t.Fatalf("shrinker did not reduce weight: %d >= %d", w, weight(cfg))
	}
	again := Shrink(cfg, pred)
	if !again.ReproJSONEqual(small) {
		t.Fatal("shrinker is not deterministic")
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "synthetic failure" }

// TestTrialShrinksFailures: a config made to fail an oracle must come back
// with a minimized config whose repro line still replays the failure.
func TestTrialShrinksFailures(t *testing.T) {
	// Sabotage via an impossible expectation is not available from outside,
	// so drive Shrink directly with a real oracle known to pass, plus a
	// wrapper that fails when the mapping still has a K loop — a stand-in
	// for a real predicate a bug would induce.
	cfg := Generate(11)
	cfg.Mapping.AlphaK = 4
	if !strings.Contains(cfg.Mapping.Order, "K") {
		cfg.Mapping.Order += "K"
	}
	pred := func(c Config) error {
		if strings.Contains(c.Mapping.Order, "K") {
			return errTest
		}
		return nil
	}
	small := Shrink(cfg, pred)
	if small.Mapping.AlphaK != 1 {
		t.Fatalf("AlphaK not minimized: %d", small.Mapping.AlphaK)
	}
	if !strings.Contains(small.Mapping.Order, "K") {
		t.Fatal("shrinker removed the failure-carrying loop")
	}
}

// TestRegressionPinnedConfigs replays, as fixed regression points, the
// gnarliest configurations the randomized harness surfaced while this
// package was being built: bound-1 loops listed explicitly in the order,
// the Bound(C)==2 read-triplet special case combined with per-channel
// streaming, a stride-2 valid-padding partial-tile chain ending in FC
// flattening, and a weights-resident mapping with zero ifmap blocks.
func TestRegressionPinnedConfigs(t *testing.T) {
	pins := []struct {
		name string
		line string
	}{
		{
			"bound1-loops-in-order",
			`seed=1 oracle=vn config={"seed":1,"mapping":{"reuse":2,"order":"SCK","ahw":1,"ac":1,"ak":1,"ifb":2,"ofb":1,"wb":1},"net":{"layers":[{"t":0,"c":1,"h":4,"w":4,"k":1,"r":1,"s":1,"st":1}]},"scenario":{"tiles":2,"versions":2,"bpt":1},"attack":{"kind":0,"block":0,"block2":0,"byte":0,"bit":0}}`,
		},
		{
			"boundC2-perchannel",
			`seed=2 oracle=vn config={"seed":2,"mapping":{"reuse":0,"order":"KCS","ahw":3,"ac":2,"ak":2,"ifb":1,"ofb":2,"wb":1,"perchan":true},"net":{"layers":[{"t":1,"c":3,"h":5,"w":5,"k":3,"r":3,"s":3,"st":2,"v":true}]},"scenario":{"tiles":3,"versions":3,"bpt":2},"attack":{"kind":1,"block":5,"block2":9,"byte":13,"bit":3}}`,
		},
		{
			"stride2-valid-fc-chain",
			`seed=3 oracle= config={"seed":3,"mapping":{"reuse":1,"order":"CS","ahw":2,"ac":4,"ak":1,"ifb":0,"ofb":3,"wb":2,"resident":true},"net":{"layers":[{"t":0,"c":2,"h":7,"w":9,"k":4,"r":3,"s":3,"st":2,"v":true},{"t":4,"c":4,"h":3,"w":4,"k":4,"r":2,"s":2,"st":2},{"t":3,"c":16,"h":1,"w":1,"k":5,"r":1,"s":1,"st":1}]},"scenario":{"tiles":2,"versions":2,"bpt":1},"attack":{"kind":0,"block":1,"block2":2,"byte":31,"bit":7}}`,
		},
	}
	for _, pin := range pins {
		t.Run(pin.name, func(t *testing.T) {
			cfg, oracle, err := ParseRepro(pin.line)
			if err != nil {
				t.Fatal(err)
			}
			if err := Replay(cfg, oracle); err != nil {
				t.Errorf("pinned config regressed: %v", err)
			}
		})
	}
}
