package conformance

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"seculator/internal/attack"
	"seculator/internal/dataflow"
	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/pattern"
	"seculator/internal/protect"
	"seculator/internal/resilience"
	"seculator/internal/runner"
	"seculator/internal/sched"
	"seculator/internal/secure"
	"seculator/internal/sim"
	"seculator/internal/tensor"
	"seculator/internal/vngen"
)

// ---------------------------------------------------------------------------
// Oracle 3: the VN master equation.
// ---------------------------------------------------------------------------

// CheckVN verifies, for one raw mapping, every property the paper hangs on
// the master equation (1^η, 2^η, …, κ^η)^ρ:
//
//   - the ⟨η,κ,ρ⟩ FSM replays exactly the write and read VN sequences the
//     dataflow generator enumerates, tile by tile, and is exhausted at the
//     end (LayerUnit replay included);
//   - compressing the enumerated sequences recovers the derived triplets
//     (round trip through pattern.Compress);
//   - the streaming first-read predicates (K==0 for ifmaps, S==0 for
//     weights) agree with the generator's First flags on every event;
//   - final writes carry FinalVN, and the analytic traffic estimate matches
//     the sum of enumerated event blocks.
//
// Structurally invalid mappings (fuzzing can produce them) are skipped.
func CheckVN(ms MapSpec) error {
	m := ms.Mapping()
	if err := m.Validate(); err != nil {
		return nil // out of scope: the oracle is about valid mappings
	}
	events, err := dataflow.Collect(m)
	if err != nil {
		return fmt.Errorf("valid mapping failed to enumerate: %w", err)
	}
	writeT, readT := dataflow.DeriveWrite(m), dataflow.DeriveRead(m)
	if !writeT.Valid() || !readT.Valid() {
		return fmt.Errorf("derived invalid triplet: write=%+v read=%+v", writeT, readT)
	}

	// Whole-layer FSM replay: the VN generators are per-layer hardware —
	// the triplets describe the full write/read VN sequences in program
	// order, tiles interleaved exactly as the dataflow emits them.
	wGen, rGen := vngen.New(writeT), vngen.New(readT)
	unit := vngen.NewLayerUnit(1, m, pattern.Triplet{})

	// Per-tile VN ground truth, tracked independently of the FSMs: a tile's
	// write VNs must count 1,2,3,… and a read must return the tile's last
	// written VN (the generator's in-place partial-sum contract).
	lastWrite := map[tensor.TileID]int{}

	var writeSeq, readSeq []int
	var blockSum uint64
	finalVN := vngen.FinalVN(writeT)
	for i, e := range events {
		blockSum += uint64(e.Blocks)
		switch {
		case e.Tensor == tensor.Ofmap && e.Kind == sim.Write:
			writeSeq = append(writeSeq, e.VN)
			want, ok := wGen.Next()
			if !ok || want != e.VN {
				return fmt.Errorf("event %d: write VN %d, FSM replay gives (%d,%v)", i, e.VN, want, ok)
			}
			uw, uok := unit.WriteVN()
			if !uok || uw != e.VN {
				return fmt.Errorf("event %d: write VN %d, LayerUnit gives (%d,%v)", i, e.VN, uw, uok)
			}
			if e.VN != lastWrite[e.Tile]+1 {
				return fmt.Errorf("event %d: tile %+v write VN %d after %d", i, e.Tile, e.VN, lastWrite[e.Tile])
			}
			lastWrite[e.Tile] = e.VN
			if e.Final != (e.VN == finalVN) {
				return fmt.Errorf("event %d: Final=%v but VN %d vs FinalVN %d", i, e.Final, e.VN, finalVN)
			}
		case e.Tensor == tensor.Ofmap && e.Kind == sim.Read:
			readSeq = append(readSeq, e.VN)
			want, ok := rGen.Next()
			if !ok || want != e.VN {
				return fmt.Errorf("event %d: read VN %d, FSM replay gives (%d,%v)", i, e.VN, want, ok)
			}
			ur, uok := unit.ReadVN()
			if !uok || ur != e.VN {
				return fmt.Errorf("event %d: read VN %d, LayerUnit gives (%d,%v)", i, e.VN, ur, uok)
			}
			if e.VN != lastWrite[e.Tile] {
				return fmt.Errorf("event %d: tile %+v read VN %d, last write %d", i, e.Tile, e.VN, lastWrite[e.Tile])
			}
		case e.Tensor == tensor.Ifmap:
			var want bool
			if m.PerChannel {
				want = e.Idx.C == 0
			} else {
				want = vngen.FirstIfmapRead(e.Idx)
			}
			if e.First != want {
				return fmt.Errorf("event %d: ifmap First=%v, predicate says %v (idx %+v)", i, e.First, want, e.Idx)
			}
		case e.Tensor == tensor.Weight:
			if e.First != vngen.FirstWeightRead(e.Idx) {
				return fmt.Errorf("event %d: weight First=%v, predicate says %v (idx %+v)", i, e.First, vngen.FirstWeightRead(e.Idx), e.Idx)
			}
		}
	}
	if !wGen.Exhausted() || !rGen.Exhausted() {
		return fmt.Errorf("FSMs not exhausted (write rem %d, read rem %d)", wGen.Remaining(), rGen.Remaining())
	}
	if !unit.Done() {
		return fmt.Errorf("LayerUnit not done after replay")
	}

	// Round trip: the enumerated sequences must compress back to the
	// derived triplets.
	if err := checkRoundTrip("write", writeSeq, writeT); err != nil {
		return err
	}
	if err := checkRoundTrip("read", readSeq, readT); err != nil {
		return err
	}

	// Streaming-generator bookkeeping: Reset replays identically.
	if err := checkReset(writeT); err != nil {
		return err
	}

	// Analytic traffic estimate vs. enumerated blocks.
	if est := sched.EstimateDataBlocks(m); est != blockSum {
		return fmt.Errorf("EstimateDataBlocks=%d but events sum to %d", est, blockSum)
	}
	return nil
}

// checkRoundTrip verifies an enumerated VN sequence compresses back to the
// derived triplet.
func checkRoundTrip(name string, seq []int, want pattern.Triplet) error {
	got, ok := pattern.Compress(seq)
	if !ok {
		return fmt.Errorf("%s sequence is not a master-equation instance: %v", name, seq)
	}
	if len(seq) == 0 {
		if want.Len() != 0 {
			return fmt.Errorf("%s sequence empty but derived triplet %+v expands to %d", name, want, want.Len())
		}
		return nil
	}
	if !pattern.Equal(got, want) {
		return fmt.Errorf("%s sequence compresses to %+v, derived %+v", name, got, want)
	}
	return nil
}

// checkReset drains a generator twice around a Reset and compares.
func checkReset(t pattern.Triplet) error {
	g := vngen.New(t)
	var a []int
	for v, ok := g.Next(); ok; v, ok = g.Next() {
		a = append(a, v)
	}
	if g.Emitted() != t.Len() {
		return fmt.Errorf("generator emitted %d, triplet length %d", g.Emitted(), t.Len())
	}
	g.Reset()
	for i := range a {
		v, ok := g.Next()
		if !ok || v != a[i] {
			return fmt.Errorf("replay after Reset diverged at %d: (%d,%v) vs %d", i, v, ok, a[i])
		}
	}
	if !g.Exhausted() {
		return fmt.Errorf("generator not exhausted after Reset replay")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Oracle 1: cross-scheme equivalence.
// ---------------------------------------------------------------------------

// matrixDesigns are the schemes the functional detection matrix compares.
var matrixDesigns = []protect.Design{
	protect.Baseline, protect.Secure, protect.TNPU, protect.GuardNN, protect.Seculator,
}

// CheckMatrixRow runs one attack row of the detection matrix across every
// design and checks the Table 5 shape: honest runs are clean everywhere,
// the Baseline silently corrupts, every protected design detects.
func CheckMatrixRow(scn attack.Scenario, atk attack.MatrixAttack) error {
	for _, d := range matrixDesigns {
		m, macs, dram, err := attack.NewFunctionalMemory(d)
		if err != nil {
			return fmt.Errorf("%v: %w", d, err)
		}
		res, err := attack.RunMatrix(m, macs, dram, scn, atk)
		if err != nil {
			return fmt.Errorf("%v/%v: driver error: %w", d, atk, err)
		}
		switch {
		case atk == attack.AttackNone:
			if res.Detected || res.Corrupted {
				return fmt.Errorf("%v/none: honest run flagged: %+v", d, res)
			}
		case d == protect.Baseline:
			if res.Detected {
				return fmt.Errorf("Baseline/%v: baseline cannot detect", atk)
			}
			if !res.Corrupted {
				return fmt.Errorf("Baseline/%v: attack did not corrupt data", atk)
			}
		default:
			if !res.Detected {
				return fmt.Errorf("%v/%v: attack not detected (corrupted=%v)", d, atk, res.Corrupted)
			}
		}
	}
	return nil
}

// CheckCrossScheme verifies the protection schemes agree wherever the paper
// says they must:
//
//   - functionally: on the randomized two-layer scenario every design
//     computes the identical plaintexts on honest runs, the Baseline
//     silently corrupts under every attack, and every protected design
//     detects every attack (the Table 5 shape, at a random point);
//   - architecturally: on the randomized network all designs move the
//     identical data traffic (equal to the scheduler's analytic estimate
//     and to the dataflow enumeration), the Baseline and Seculator add zero
//     metadata blocks, the per-block schemes add a nonzero overhead, and no
//     protected design is faster than the Baseline.
func CheckCrossScheme(cfg Config) error {
	scn := attack.Scenario{
		Tiles:         cfg.Scenario.Tiles,
		Versions:      cfg.Scenario.Versions,
		BlocksPerTile: cfg.Scenario.BlocksPerTile,
		Secret:        0x5ec0_1a70,
		BootRandom:    uint64(cfg.Seed)*2 + 1,
	}
	for _, atk := range attack.MatrixAttacks() {
		if err := CheckMatrixRow(scn, atk); err != nil {
			return err
		}
	}

	// Architectural accounting on the generated network.
	net := cfg.Net.Network()
	if err := net.Validate(); err != nil {
		return nil // generator/fuzzer produced an invalid net: out of scope
	}
	rcfg := runner.DefaultConfig()
	choices, err := sched.MapNetwork(net, rcfg.NPU, rcfg.DRAM)
	if err != nil {
		return fmt.Errorf("schedule: %w", err)
	}
	var want uint64
	for _, c := range choices {
		est := sched.EstimateDataBlocks(c.Mapping)
		if est != c.DataBlocks {
			return fmt.Errorf("layer %s: choice.DataBlocks=%d, estimate=%d", c.Layer.Name, c.DataBlocks, est)
		}
		events, err := dataflow.Collect(c.Mapping)
		if err != nil {
			return fmt.Errorf("layer %s: %w", c.Layer.Name, err)
		}
		var sum uint64
		for _, e := range events {
			sum += uint64(e.Blocks)
		}
		if sum != est {
			return fmt.Errorf("layer %s: enumerated %d blocks, estimate %d", c.Layer.Name, sum, est)
		}
		want += est
	}

	var baseCycles sim.Cycles
	var baseData uint64
	for i, d := range matrixDesigns {
		res, err := runner.Run(context.Background(), net, d, rcfg)
		if err != nil {
			return fmt.Errorf("%v: %w", d, err)
		}
		data := res.Traffic.ByKind(sim.DataTraffic)
		if data != want {
			return fmt.Errorf("%v: data traffic %d, schedule says %d", d, data, want)
		}
		if i == 0 {
			baseCycles, baseData = res.Cycles, data
		}
		if data != baseData {
			return fmt.Errorf("%v: data traffic %d differs from baseline %d", d, data, baseData)
		}
		over := res.Traffic.Overhead()
		switch d {
		case protect.Baseline, protect.Seculator:
			if over != 0 {
				return fmt.Errorf("%v: metadata overhead %d blocks, want 0", d, over)
			}
		default:
			if over == 0 {
				return fmt.Errorf("%v: zero metadata overhead", d)
			}
		}
		if res.Cycles < baseCycles {
			return fmt.Errorf("%v: %d cycles, faster than baseline %d", d, res.Cycles, baseCycles)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Oracle 2: serial/parallel equivalence.
// ---------------------------------------------------------------------------

// runSnapshot is everything observable about one executor run that must be
// bit-identical across worker counts.
type runSnapshot struct {
	out       []int32
	outputMAC mac.Digest
	blocks    int
	regs      []protect.RegisterState
	phases    []uint64 // FNV-1a over the full DRAM ciphertext per phase
}

func dramDigest(d *mem.DRAM) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	d.ForEachLine(func(addr uint64, data []byte) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(addr >> (8 * i))
		}
		h.Write(buf[:])
		h.Write(data)
	})
	return h.Sum64()
}

// CheckSerialParallel runs the secure executor on the generated network at
// every worker count in Workers and asserts: identical decrypted outputs
// (also equal to the plaintext reference), identical OutputMAC, identical
// per-layer snapshots of all four XOR-MAC registers (values and fold
// counts), and bit-identical DRAM ciphertext at every phase boundary. A
// final hook-free run covers the overlapped-load path the hooks disable.
func CheckSerialParallel(cfg Config) error {
	net := cfg.Net.Network()
	if err := net.Validate(); err != nil {
		return nil
	}
	in, ws := nn.RandomModel(net, cfg.Seed)
	golden, err := nn.ForwardNetwork(net, in, ws)
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}

	run := func(workers int, hooks bool) (runSnapshot, error) {
		x := secure.NewExecutor()
		x.Parallel = workers
		var snap runSnapshot
		if hooks {
			x.OnLayerMACs = func(phase int, regs protect.RegisterState) {
				snap.regs = append(snap.regs, regs)
			}
			x.AfterPhase = func(phase int, d *mem.DRAM) {
				snap.phases = append(snap.phases, dramDigest(d))
			}
		}
		res, err := x.Run(context.Background(), net, in, ws)
		if err != nil {
			return snap, err
		}
		snap.out = res.Output.Data
		snap.outputMAC = res.OutputMAC
		snap.blocks = res.Blocks
		return snap, nil
	}

	var base runSnapshot
	for i, workers := range Workers {
		snap, err := run(workers, true)
		if err != nil {
			return fmt.Errorf("workers=%d: honest run failed: %w", workers, err)
		}
		if i == 0 {
			base = snap
			if len(snap.out) != len(golden.Data) {
				return fmt.Errorf("output length %d, reference %d", len(snap.out), len(golden.Data))
			}
			for j := range snap.out {
				if snap.out[j] != golden.Data[j] {
					return fmt.Errorf("output[%d]=%d, reference %d", j, snap.out[j], golden.Data[j])
				}
			}
			continue
		}
		if err := snap.diff(base, workers, Workers[0]); err != nil {
			return err
		}
	}

	// Hook-free parallel run: exercises the overlapped weight-load path.
	last := Workers[len(Workers)-1]
	snap, err := run(last, false)
	if err != nil {
		return fmt.Errorf("workers=%d (no hooks): honest run failed: %w", last, err)
	}
	for j := range snap.out {
		if snap.out[j] != base.out[j] {
			return fmt.Errorf("overlap run output[%d]=%d, serial %d", j, snap.out[j], base.out[j])
		}
	}
	if snap.outputMAC != base.outputMAC {
		return fmt.Errorf("overlap run OutputMAC differs from serial")
	}
	if snap.blocks != base.blocks {
		return fmt.Errorf("overlap run Blocks=%d, serial %d", snap.blocks, base.blocks)
	}
	return nil
}

func (s runSnapshot) diff(base runSnapshot, workers, baseWorkers int) error {
	tag := fmt.Sprintf("workers=%d vs %d", workers, baseWorkers)
	for j := range s.out {
		if s.out[j] != base.out[j] {
			return fmt.Errorf("%s: output[%d] %d != %d", tag, j, s.out[j], base.out[j])
		}
	}
	if s.outputMAC != base.outputMAC {
		return fmt.Errorf("%s: OutputMAC differs", tag)
	}
	if s.blocks != base.blocks {
		return fmt.Errorf("%s: Blocks %d != %d", tag, s.blocks, base.blocks)
	}
	if len(s.regs) != len(base.regs) {
		return fmt.Errorf("%s: %d register snapshots != %d", tag, len(s.regs), len(base.regs))
	}
	for j := range s.regs {
		if s.regs[j] != base.regs[j] {
			return fmt.Errorf("%s: MAC registers diverge at phase %d: %+v != %+v", tag, j, s.regs[j], base.regs[j])
		}
	}
	if len(s.phases) != len(base.phases) {
		return fmt.Errorf("%s: %d phase digests != %d", tag, len(s.phases), len(base.phases))
	}
	for j := range s.phases {
		if s.phases[j] != base.phases[j] {
			return fmt.Errorf("%s: ciphertext diverges at phase %d", tag, j)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Oracle 4: attack detection — zero false negatives, zero false positives.
// ---------------------------------------------------------------------------

// CheckAttackDetection mounts the config's randomized attack on two
// surfaces and demands detection on both, after confirming the honest runs
// pass:
//
//   - temporal: the functional two-layer scenario (partial-sum versions in
//     place), attacked per the spec — byte tamper, block swap, or stale-
//     version replay through the DRAM mutation surface;
//   - spatial: the full secure executor on the generated network, attacked
//     through the AfterPhase hook at a guaranteed-consumed region — the
//     final output region after the last layer, or a weight region right
//     after the host load.
func CheckAttackDetection(cfg Config) error {
	if err := checkScenarioAttack(cfg); err != nil {
		return err
	}
	return checkExecutorAttack(cfg)
}

func checkScenarioAttack(cfg Config) error {
	scn := attack.Scenario{
		Tiles:         cfg.Scenario.Tiles,
		Versions:      cfg.Scenario.Versions,
		BlocksPerTile: cfg.Scenario.BlocksPerTile,
		Secret:        0x5ec0_1a70,
		BootRandom:    uint64(cfg.Seed)*2 + 1,
	}
	if err := attack.RunSeculator(scn, nil, nil); err != nil {
		return fmt.Errorf("scenario: honest run rejected (false positive): %w", err)
	}

	a := cfg.Attack
	total := scn.Tiles * scn.BlocksPerTile
	pick := func(sel int) (tile, blk int) {
		sel %= total
		return sel / scn.BlocksPerTile, sel % scn.BlocksPerTile
	}
	var midLayer, mutate attack.Mutator
	var stale []byte
	var staleAddr uint64
	name := ""
	switch a.Kind % 3 {
	case 0: // single-byte ciphertext tamper
		name = "tamper"
		mutate = func(d *mem.DRAM, l attack.Layout) {
			t, b := pick(a.Block)
			d.Tamper(l.Addr(t, b), a.Byte%64, 1<<(a.Bit%8))
		}
	case 1: // splice: swap two distinct blocks
		name = "splice"
		mutate = func(d *mem.DRAM, l attack.Layout) {
			t1, b1 := pick(a.Block)
			t2, b2 := pick(a.Block2)
			if t1 == t2 && b1 == b2 {
				t2, b2 = pick(a.Block2 + 1)
			}
			d.Swap(l.Addr(t1, b1), l.Addr(t2, b2))
		}
	default: // temporal replay of a stale partial-sum version
		name = "replay"
		midLayer = func(d *mem.DRAM, l attack.Layout) {
			t, b := pick(a.Block)
			staleAddr = l.Addr(t, b)
			stale, _ = d.Snapshot(staleAddr)
		}
		mutate = func(d *mem.DRAM, l attack.Layout) {
			d.Restore(staleAddr, stale)
		}
	}
	err := attack.RunSeculator(scn, midLayer, mutate)
	if err == nil {
		return fmt.Errorf("scenario: %s attack undetected (false negative)", name)
	}
	if !errorsIsIntegrity(err) {
		return fmt.Errorf("scenario: %s attack raised non-integrity error: %w", name, err)
	}
	return nil
}

func checkExecutorAttack(cfg Config) error {
	net := cfg.Net.Network()
	if err := net.Validate(); err != nil {
		return nil
	}
	in, ws := nn.RandomModel(net, cfg.Seed)

	var plan secure.PlanInfo
	x := secure.NewExecutor()
	x.Retry = resilience.Disabled()
	x.OnPlan = func(p secure.PlanInfo) { plan = p }

	a := cfg.Attack
	kind := a.Kind % atkKinds
	// Weight tampering needs a layer that has weights; temporal replay is
	// the scenario surface's job. Both fall back to the always-available
	// output tamper once the plan is known.
	weightTarget := -1
	mount := func(phase int, d *mem.DRAM) {
		final := plan.Final()
		switch kind {
		case AtkTamperWeights:
			if phase != -1 || weightTarget < 0 {
				return
			}
			w := plan.Weights[weightTarget]
			d.Tamper(w.Base+uint64(a.Block%w.Blocks), a.Byte%64, 1<<(a.Bit%8))
		case AtkSwapOutput, AtkSpliceOutput:
			if phase != len(plan.Acts)-1 || final.Blocks < 2 {
				return
			}
			b1 := uint64(a.Block % final.Blocks)
			b2 := uint64(a.Block2 % final.Blocks)
			if b1 == b2 {
				b2 = (b2 + 1) % uint64(final.Blocks)
			}
			if kind == AtkSwapOutput {
				d.Swap(final.Base+b1, final.Base+b2)
			} else {
				src, _ := d.Snapshot(final.Base + b1)
				d.Restore(final.Base+b2, src)
			}
		default: // AtkTamperOutput and fallbacks
			if phase != len(plan.Acts)-1 {
				return
			}
			d.Tamper(final.Base+uint64(a.Block%final.Blocks), a.Byte%64, 1<<(a.Bit%8))
		}
	}

	// First pass just captures the plan (honest; must succeed — that is the
	// executor-path false-positive check).
	if _, err := x.Run(context.Background(), net, in, ws); err != nil {
		return fmt.Errorf("executor: honest run rejected (false positive): %w", err)
	}
	// Resolve fallbacks now that the plan is known.
	if kind == AtkTamperWeights {
		for i, w := range plan.Weights {
			if w.Blocks > 0 {
				weightTarget = i
				break
			}
		}
		if weightTarget < 0 {
			kind = AtkTamperOutput
		}
	}
	if (kind == AtkSwapOutput || kind == AtkSpliceOutput) && plan.Final().Blocks < 2 {
		kind = AtkTamperOutput
	}
	if kind == AtkReplayStale {
		kind = AtkTamperOutput
	}

	x2 := secure.NewExecutor()
	x2.Retry = resilience.Disabled()
	x2.OnPlan = func(p secure.PlanInfo) { plan = p }
	x2.AfterPhase = mount
	res, err := x2.Run(context.Background(), net, in, ws)
	if err == nil {
		return fmt.Errorf("executor: attack kind %d undetected (false negative)", kind)
	}
	if !res.Recovery.Breached {
		return fmt.Errorf("executor: attack kind %d errored without latching the breach: %w", kind, err)
	}
	return nil
}

// errorsIsIntegrity reports whether err is an integrity-class detection.
func errorsIsIntegrity(err error) bool {
	return errors.Is(err, mac.ErrIntegrity)
}
