package conformance

import (
	"context"
	"fmt"
	"sync"
	"time"

	"seculator/internal/nn"
	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/secure"
	"seculator/internal/serve"
)

// ---------------------------------------------------------------------------
// Oracle 5: pipelined-batch equivalence.
// ---------------------------------------------------------------------------

// pipelineBatch is how many requests the pipelined-batch oracle rides
// through one micro-batch.
const pipelineBatch = 3

// CheckPipelinedBatch replays a micro-batch through the serving tier's
// layer-stage pipeline — every request attached to one shared verified-
// weight residency, chained by StageGates so request j runs layer k while
// request j-1 runs layer k+1 — and demands each request be bit-identical
// to its own serial, non-resident baseline: same decrypted output, same
// OutputMAC, same per-layer register snapshots, same DRAM block count.
// This is the serial/parallel oracle extended across requests: stage
// interleaving and residency must both be unobservable.
func CheckPipelinedBatch(cfg Config) error {
	net := cfg.Net.Network()
	if err := net.Validate(); err != nil {
		return nil
	}
	rcfg := runner.DefaultConfig()
	ctx := context.Background()

	// One model (weights from cfg.Seed), per-request inputs — the serving
	// shape: requests share resident weights, activations differ.
	_, ws := nn.RandomModel(net, cfg.Seed)
	first := net.Layers[0]
	inputs := make([]*nn.Tensor, pipelineBatch)
	for i := range inputs {
		inputs[i] = nn.NewTensor(first.C, first.H, first.W)
		inputs[i].Randomize(cfg.Seed*31 + int64(i))
	}

	run := func(in *nn.Tensor, res *secure.WeightResidency, gate *serve.StageGate) (runSnapshot, error) {
		x := secure.NewExecutor()
		x.NPU, x.DRAM = rcfg.NPU, rcfg.DRAM
		x.Residency = res
		var snap runSnapshot
		stages := len(net.Layers)
		x.OnLayerMACs = func(phase int, regs protect.RegisterState) {
			snap.regs = append(snap.regs, regs)
			gate.Done(phase + 1)
			if phase < stages {
				_ = gate.Wait(ctx, phase+2)
			}
		}
		if err := gate.Wait(ctx, 1); err != nil {
			return snap, err
		}
		r, err := x.Run(ctx, net, in, ws)
		if err != nil {
			return snap, err
		}
		snap.out = r.Output.Data
		snap.outputMAC = r.OutputMAC
		snap.blocks = r.Blocks
		return snap, nil
	}

	// Serial, non-resident baselines.
	base := make([]runSnapshot, pipelineBatch)
	for i, in := range inputs {
		snap, err := run(in, nil, nil)
		if err != nil {
			return fmt.Errorf("serial baseline %d: %w", i, err)
		}
		base[i] = snap
	}

	res, err := secure.BuildWeightResidency(ctx, net, rcfg.NPU, rcfg.DRAM,
		secure.DefaultSecret, secure.DefaultRandom, ws)
	if err != nil {
		return fmt.Errorf("residency build: %w", err)
	}
	if err := res.Verify(); err != nil {
		return fmt.Errorf("fresh residency failed its own epoch check: %w", err)
	}

	// The pipelined replay: one scheduler micro-batch, every item resident.
	sched := serve.NewScheduler(serve.SchedulerConfig{
		Workers: pipelineBatch, MaxQueue: 2 * pipelineBatch,
		MaxBatch: pipelineBatch, Linger: 20 * time.Millisecond,
	})
	defer sched.Close()

	snaps := make([]runSnapshot, pipelineBatch)
	errs := make([]error, pipelineBatch)
	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := sched.Submit(ctx, "pipeline-oracle", func(ctx context.Context, b serve.BatchInfo) (any, error) {
				snap, err := run(inputs[i], res, b.Stage)
				snaps[i] = snap
				return nil, err
			})
			errs[i] = err
		}(i)
	}
	wg.Wait()

	for i := range snaps {
		if errs[i] != nil {
			return fmt.Errorf("pipelined item %d: %w", i, errs[i])
		}
		if err := snaps[i].diff(base[i], pipelineBatch, 1); err != nil {
			return fmt.Errorf("pipelined item %d vs serial baseline: %w", i, err)
		}
	}
	return nil
}
