// Package conformance is the differential-testing harness behind the
// paper's equivalence claims: it generates random-but-valid layer
// configurations — shapes, tilings, dataflows, degenerate and partial-tile
// cases — and drives each through six oracles:
//
//  1. cross-scheme equivalence: every protection design computes identical
//     outputs and self-consistent traffic/metadata accounting;
//  2. serial/parallel equivalence: outputs, OutputMAC, all four XOR-MAC
//     registers and the ciphertext bytes in DRAM are bit-identical across
//     worker counts {1, 2, 8};
//  3. the VN master equation: the ⟨η, κ, ρ⟩ FSM replay matches the VN
//     sequence the dataflow simulator enumerates, for every mapping;
//  4. attack detection: randomized tamper/replay/swap/splice mutations are
//     detected with zero false negatives, honest runs with zero false
//     positives;
//  5. pipelined-batch equivalence: a serving micro-batch riding one shared
//     verified-weight residency through the layer-stage pipeline is
//     bit-identical, request by request, to serial non-resident runs;
//  6. gateway attack replay: the command-channel MITM mounted through a
//     2-replica gateway fleet is detected with zero false negatives and
//     zero false positives, including against a session live-migrated
//     mid-attack — the breach latches on the new replica.
//
// Every trial derives deterministically from one int64 seed; a failing
// trial shrinks to a minimal config and prints a one-line repro
// ("seed=… oracle=… config=…") that Replay re-executes exactly.
package conformance

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"seculator/internal/dataflow"
	"seculator/internal/workload"
)

// MapSpec is the JSON-serializable description of one raw dataflow mapping
// (the VN oracle's input). It deliberately spans configurations the
// scheduler would never emit — bound-1 loops listed in the order, zero-block
// ifmap tiles, per-channel partial-sum nests — because the master equation
// must hold for any structurally valid mapping.
type MapSpec struct {
	Reuse      int    `json:"reuse"` // dataflow.ReuseStyle
	Order      string `json:"order"` // subset-permutation of "SCK", outermost first
	AlphaHW    int    `json:"ahw"`
	AlphaC     int    `json:"ac"`
	AlphaK     int    `json:"ak"`
	IfBlocks   int    `json:"ifb"`
	OfBlocks   int    `json:"ofb"`
	WBlocks    int    `json:"wb"`
	Resident   bool   `json:"resident,omitempty"`
	PerChannel bool   `json:"perchan,omitempty"`
}

// Mapping materializes the spec.
func (s MapSpec) Mapping() *dataflow.Mapping {
	var order dataflow.LoopOrder
	for _, ch := range s.Order {
		switch ch {
		case 'S':
			order = append(order, dataflow.LoopS)
		case 'C':
			order = append(order, dataflow.LoopC)
		case 'K':
			order = append(order, dataflow.LoopK)
		}
	}
	return &dataflow.Mapping{
		Name:             fmt.Sprintf("conf/%s a=%d,%d,%d", s.Order, s.AlphaHW, s.AlphaC, s.AlphaK),
		Reuse:            dataflow.ReuseStyle(s.Reuse),
		Order:            order,
		AlphaHW:          s.AlphaHW,
		AlphaC:           s.AlphaC,
		AlphaK:           s.AlphaK,
		IfmapTileBlocks:  s.IfBlocks,
		OfmapTileBlocks:  s.OfBlocks,
		WeightTileBlocks: s.WBlocks,
		WeightsResident:  s.Resident,
		PerChannel:       s.PerChannel,
	}
}

// LayerSpec is one generated network layer.
type LayerSpec struct {
	Type   int  `json:"t"` // workload.LayerType
	C      int  `json:"c"`
	H      int  `json:"h"`
	W      int  `json:"w"`
	K      int  `json:"k"`
	R      int  `json:"r"`
	S      int  `json:"s"`
	Stride int  `json:"st"`
	Valid  bool `json:"v,omitempty"`
}

// NetSpec is a generated network: a chain of layers whose shapes are kept
// consistent by the generator and re-checked by workload.Network.Validate.
type NetSpec struct {
	Layers []LayerSpec `json:"layers"`
}

// Network materializes the spec.
func (n NetSpec) Network() workload.Network {
	net := workload.Network{Name: "conformance"}
	for i, l := range n.Layers {
		net.Layers = append(net.Layers, workload.Layer{
			Name: fmt.Sprintf("g%d", i), Type: workload.LayerType(l.Type),
			C: l.C, H: l.H, W: l.W, K: l.K, R: l.R, S: l.S,
			Stride: l.Stride, Valid: l.Valid,
		})
	}
	return net
}

// ScenSpec shapes the functional two-layer attack scenario.
type ScenSpec struct {
	Tiles         int `json:"tiles"`
	Versions      int `json:"versions"`
	BlocksPerTile int `json:"bpt"`
}

// Attack kinds mounted by the attack oracle against the secure executor
// (spatial surface) and the two-layer scenario (temporal surface).
const (
	AtkTamperOutput  = iota // single-bit flip in the final output region
	AtkSwapOutput           // swap two ciphertext lines of the final region
	AtkSpliceOutput         // copy one final-region line over another
	AtkTamperWeights        // single-bit flip in a weight region after load
	AtkReplayStale          // temporal replay: restore a stale partial-sum version
	atkKinds
)

// AttackSpec selects the mounted attack and its target coordinates. The
// selectors are reduced modulo the target region's extent at mount time, so
// any values are valid.
type AttackSpec struct {
	Kind   int `json:"kind"`
	Block  int `json:"block"`
	Block2 int `json:"block2"`
	Byte   int `json:"byte"`
	Bit    int `json:"bit"`
}

// Config is one self-contained trial: everything the six oracles consume,
// serializable as the repro payload.
type Config struct {
	Seed     int64      `json:"seed"`
	Mapping  MapSpec    `json:"mapping"`
	Net      NetSpec    `json:"net"`
	Scenario ScenSpec   `json:"scenario"`
	Attack   AttackSpec `json:"attack"`
}

// Workers are the worker counts the serial/parallel oracle compares.
var Workers = []int{1, 2, 8}

// Generate derives the full trial configuration from one seed.
func Generate(seed int64) Config {
	r := rand.New(rand.NewSource(seed))
	return Config{
		Seed:     seed,
		Mapping:  genMapping(r),
		Net:      genNet(r),
		Scenario: genScenario(r),
		Attack:   genAttack(r),
	}
}

// genBound draws a loop bound biased toward the degenerate edges: 1 (absent
// loop), 2 (the DeriveRead ramp-of-height-one special case), and small
// general values.
func genBound(r *rand.Rand) int {
	switch r.Intn(6) {
	case 0:
		return 1
	case 1:
		return 2
	default:
		return 1 + r.Intn(5)
	}
}

// genMapping builds a random structurally valid raw mapping.
func genMapping(r *rand.Rand) MapSpec {
	s := MapSpec{
		Reuse:      r.Intn(3),
		AlphaHW:    genBound(r),
		AlphaC:     genBound(r),
		AlphaK:     genBound(r),
		IfBlocks:   r.Intn(3),     // 0 is legal: no ifmap traffic
		OfBlocks:   1 + r.Intn(3), // must be positive
		WBlocks:    r.Intn(3),
		PerChannel: r.Intn(4) == 0,
	}
	s.Resident = s.WBlocks > 0 && r.Intn(2) == 0
	s.Order = genOrder(r, s)
	return s
}

// genOrder permutes the loop variables and drops bound-1 loops with
// probability 1/2 each (loops with bound > 1 must appear, per
// Mapping.Validate; bound-1 loops listed explicitly are a legal degenerate
// the scheduler never produces — exactly the surface this harness exists
// to reach).
func genOrder(r *rand.Rand, s MapSpec) string {
	vars := []byte{'S', 'C', 'K'}
	bounds := map[byte]int{'S': s.AlphaHW, 'C': s.AlphaC, 'K': s.AlphaK}
	r.Shuffle(len(vars), func(i, j int) { vars[i], vars[j] = vars[j], vars[i] })
	var b strings.Builder
	for _, v := range vars {
		if bounds[v] > 1 || r.Intn(2) == 0 {
			b.WriteByte(v)
		}
	}
	return b.String()
}

// genNet builds a random valid network of 1–3 layers with small shapes,
// covering every layer type, stride-2 partial tiles, valid-padding leftover
// rows and the FC flattening rule.
func genNet(r *rand.Rand) NetSpec {
	n := 1 + r.Intn(3)
	c := 1 + r.Intn(4)
	h := 3 + r.Intn(8)
	w := 3 + r.Intn(8)
	var spec NetSpec
	for i := 0; i < n; i++ {
		last := i == n-1
		l := genLayer(r, c, h, w, last)
		spec.Layers = append(spec.Layers, l)
		wl := NetSpec{Layers: []LayerSpec{l}}.Network().Layers[0]
		c, h, w = wl.K, wl.OutH(), wl.OutW()
		if h < 1 || w < 1 {
			break
		}
	}
	return spec
}

func genLayer(r *rand.Rand, c, h, w int, last bool) LayerSpec {
	kinds := []int{int(workload.Conv), int(workload.Pointwise), int(workload.Depthwise), int(workload.Pool)}
	if h*2 <= 16 && w*2 <= 16 {
		kinds = append(kinds, int(workload.Upsample))
	}
	if last {
		kinds = append(kinds, int(workload.FC), int(workload.FC))
	}
	t := kinds[r.Intn(len(kinds))]
	maxRS := min(h, w)
	switch workload.LayerType(t) {
	case workload.FC:
		return LayerSpec{Type: t, C: c * h * w, H: 1, W: 1, K: 1 + r.Intn(8), R: 1, S: 1, Stride: 1}
	case workload.Pointwise:
		return LayerSpec{Type: t, C: c, H: h, W: w, K: 1 + r.Intn(6), R: 1, S: 1, Stride: 1}
	case workload.Upsample:
		return LayerSpec{Type: t, C: c, H: h, W: w, K: c, R: 1, S: 1, Stride: 2}
	case workload.Depthwise, workload.Pool:
		rk := 1 + r.Intn(maxRS)
		if rk > 3 {
			rk = 3
		}
		st := 1 + r.Intn(2)
		valid := r.Intn(2) == 0
		if st > maxRS {
			st = 1
		}
		return LayerSpec{Type: t, C: c, H: h, W: w, K: c, R: rk, S: rk, Stride: st, Valid: valid}
	default: // Conv
		rk := 1 + r.Intn(maxRS)
		if rk > 3 {
			rk = 3
		}
		st := 1 + r.Intn(2)
		if st > maxRS {
			st = 1
		}
		return LayerSpec{
			Type: t, C: c, H: h, W: w, K: 1 + r.Intn(6),
			R: rk, S: rk, Stride: st, Valid: r.Intn(3) == 0,
		}
	}
}

func genScenario(r *rand.Rand) ScenSpec {
	return ScenSpec{
		Tiles:         2 + r.Intn(5),
		Versions:      2 + r.Intn(4),
		BlocksPerTile: 1 + r.Intn(4),
	}
}

func genAttack(r *rand.Rand) AttackSpec {
	return AttackSpec{
		Kind:   r.Intn(atkKinds),
		Block:  r.Intn(1 << 16),
		Block2: r.Intn(1 << 16),
		Byte:   r.Intn(64),
		Bit:    r.Intn(8),
	}
}

// Failure is one oracle violation with its minimized reproduction.
type Failure struct {
	Seed   int64
	Oracle string
	Config Config
	Err    error
}

// ReproLine renders the one-line deterministic reproduction:
// "seed=<n> oracle=<name> config=<compact JSON>". Replay parses and
// re-executes it.
func (f *Failure) ReproLine() string {
	js, err := json.Marshal(f.Config)
	if err != nil {
		js = []byte("{}")
	}
	return fmt.Sprintf("seed=%d oracle=%s config=%s", f.Seed, f.Oracle, js)
}

func (f *Failure) Error() string {
	return fmt.Sprintf("conformance: %s oracle failed: %v\nrepro: %s", f.Oracle, f.Err, f.ReproLine())
}

// ParseRepro decodes a ReproLine back into its config and oracle name.
func ParseRepro(line string) (Config, string, error) {
	line = strings.TrimSpace(line)
	var cfg Config
	var oracle string
	i := strings.Index(line, "config=")
	if i < 0 {
		return cfg, "", fmt.Errorf("conformance: repro line missing config=: %q", line)
	}
	head, js := line[:i], line[i+len("config="):]
	for _, f := range strings.Fields(head) {
		if v, ok := strings.CutPrefix(f, "oracle="); ok {
			oracle = v
		}
	}
	if err := json.Unmarshal([]byte(js), &cfg); err != nil {
		return cfg, "", fmt.Errorf("conformance: bad repro config: %w", err)
	}
	return cfg, oracle, nil
}

// Oracle names, as printed in repro lines.
const (
	OracleVN             = "vn"
	OracleCrossScheme    = "cross-scheme"
	OracleSerialParallel = "serial-parallel"
	OraclePipeline       = "pipeline"
	OracleAttack         = "attack"
	OracleGateway        = "gateway"
)

// oracles maps names to checkers, in trial execution order.
var oracles = []struct {
	name  string
	check func(Config) error
}{
	{OracleVN, func(c Config) error { return CheckVN(c.Mapping) }},
	{OracleCrossScheme, CheckCrossScheme},
	{OracleSerialParallel, CheckSerialParallel},
	{OraclePipeline, CheckPipelinedBatch},
	{OracleAttack, CheckAttackDetection},
	{OracleGateway, CheckGatewayAttack},
}

// Trial runs every oracle on the config; the first violation is shrunk to a
// minimal failing config and returned. nil means the trial passed.
func Trial(cfg Config) *Failure {
	for _, o := range oracles {
		if err := o.check(cfg); err != nil {
			small := Shrink(cfg, o.check)
			finalErr := o.check(small)
			if finalErr == nil { // shrinker regression safety: keep the original
				small, finalErr = cfg, err
			}
			return &Failure{Seed: cfg.Seed, Oracle: o.name, Config: small, Err: finalErr}
		}
	}
	return nil
}

// Replay re-runs one oracle (or all, when oracle is empty) on a config.
func Replay(cfg Config, oracle string) error {
	for _, o := range oracles {
		if oracle != "" && o.name != oracle {
			continue
		}
		if err := o.check(cfg); err != nil {
			return fmt.Errorf("%s: %w", o.name, err)
		}
	}
	return nil
}

// Run executes n seeded trials (seeds base, base+1, …) and returns every
// failure. report, when non-nil, observes progress after each trial.
func Run(base int64, n int, report func(done int, f *Failure)) []*Failure {
	var fails []*Failure
	for i := 0; i < n; i++ {
		f := Trial(Generate(base + int64(i)))
		if f != nil {
			fails = append(fails, f)
		}
		if report != nil {
			report(i+1, f)
		}
	}
	return fails
}
