package fault

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"seculator/internal/mem"
	"seculator/internal/protect"
	"seculator/internal/resilience"
	"seculator/internal/sim"
)

func block(fill byte) []byte {
	b := make([]byte, 64)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestBitFlipDeterministicAndTransient(t *testing.T) {
	run := func(seed int64) ([][]byte, int) {
		f := NewBitFlip(0.5, seed)
		var out [][]byte
		for i := 0; i < 64; i++ {
			b := block(0xAA)
			f.OnRead(uint64(i), b)
			out = append(out, b)
		}
		return out, f.Injected()
	}
	a, na := run(11)
	b, nb := run(11)
	if na != nb {
		t.Fatalf("same seed, different hit counts: %d vs %d", na, nb)
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("same seed, read %d diverged", i)
		}
	}
	if na == 0 || na == 64 {
		t.Fatalf("rate 0.5 over 64 reads delivered %d flips; want some but not all", na)
	}
	// Each delivered fault is exactly one flipped bit.
	flips := 0
	for i := range a {
		for j := range a[i] {
			for bit := 0; bit < 8; bit++ {
				if (a[i][j]^0xAA)&(1<<bit) != 0 {
					flips++
				}
			}
		}
	}
	if flips != na {
		t.Fatalf("%d bits flipped across %d delivered faults", flips, na)
	}
	// The write path is untouched: bit flips are pin transients.
	f := NewBitFlip(1, 1)
	w := block(0x55)
	f.OnWrite(0, w)
	if !bytes.Equal(w, block(0x55)) {
		t.Fatal("BitFlip mutated a write")
	}
	if f.Injected() != 0 {
		t.Fatal("OnWrite counted as a delivered fault")
	}
}

func TestStuckAtSelectsResidueClass(t *testing.T) {
	f := NewStuckAt(4, 1, 9) // lines addr%4 == 1, bit 9 => byte 1 bit 1
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 8; addr++ {
			b := block(0)
			f.OnRead(addr, b)
			faulty := addr%4 == 1
			if got := b[1]&0x02 != 0; got != faulty {
				t.Fatalf("pass %d addr %d: stuck bit %v, want %v", pass, addr, got, faulty)
			}
		}
	}
	if f.Injected() != 4 {
		t.Fatalf("delivered %d faults, want 4 (2 passes x 2 faulty lines)", f.Injected())
	}
	if NewStuckAt(0, 7, 3).Period != 1 {
		t.Fatal("zero period not clamped")
	}
}

func TestBurstWindow(t *testing.T) {
	f := NewBurst(3, 2, 4, 99)
	clean := 0
	for i := 0; i < 10; i++ {
		b := block(0)
		f.OnRead(uint64(i), b)
		inside := i >= 3 && i < 5
		corrupted := !bytes.Equal(b, block(0))
		if corrupted != inside {
			t.Fatalf("read %d: corrupted=%v, want %v", i, corrupted, inside)
		}
		if !corrupted {
			clean++
		}
	}
	if f.Injected() != 2 {
		t.Fatalf("delivered %d faults, want 2", f.Injected())
	}
	if clean != 8 {
		t.Fatalf("%d clean reads, want 8", clean)
	}
}

func TestReplayArmsOnOverwriteAndServesStale(t *testing.T) {
	dram, err := mem.New(mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := NewReplay()
	dram.SetInjector(f)

	stale := block(0x01)
	dram.WriteBlock(7, stale, sim.DataTraffic)
	if f.Armed() {
		t.Fatal("armed before any overwrite")
	}
	got := make([]byte, 64)
	dram.ReadBlock(7, got, sim.DataTraffic)
	if !bytes.Equal(got, stale) {
		t.Fatal("unarmed replay mutated a read")
	}

	fresh := block(0x02)
	dram.WriteBlock(7, fresh, sim.DataTraffic)
	if !f.Armed() {
		t.Fatal("overwrite with new content did not arm the replay")
	}
	dram.ReadBlock(7, got, sim.DataTraffic)
	if !bytes.Equal(got, stale) {
		t.Fatalf("armed replay served %x, want the stale ciphertext", got[0])
	}
	if f.Injected() == 0 {
		t.Fatal("stale serve not counted")
	}
	// Other lines stay honest.
	other := block(0x03)
	dram.WriteBlock(8, other, sim.DataTraffic)
	dram.ReadBlock(8, got, sim.DataTraffic)
	if !bytes.Equal(got, other) {
		t.Fatal("replay leaked onto a non-target line")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Fatalf("kind %d: bad name %q", k, s)
		}
	}
	if s := Kind(200).String(); s != "Kind(200)" {
		t.Fatalf("unknown kind rendered %q", s)
	}
}

func TestCampaignValidation(t *testing.T) {
	_, err := Run(context.Background(), Campaign{})
	var ce *resilience.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("empty campaign: got %v, want ConfigError", err)
	}
}

func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, DefaultCampaign())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign: got %v, want context.Canceled", err)
	}
}

// TestCampaignOutcomes is the fault-injection regression guard: across every
// fault class, the Seculator pipeline never silently corrupts (its false
// negatives are zero — every delivered fault is either detected or provably
// benign), the unprotected baseline never detects anything, and the on-chip
// MAC-register upset is always caught by the Equation 1 check and repaired
// by the layer restart.
func TestCampaignOutcomes(t *testing.T) {
	c := Campaign{
		Faults:  Kinds(),
		Rates:   []float64{0.02},
		Designs: []protect.Design{protect.Baseline, protect.Seculator},
		Trials:  2,
		Seed:    42,
		Retry:   resilience.DefaultPolicy(),
	}
	points, err := Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// 3 rate-driven kinds x 2 designs + replay x 2 designs + mac-register
	// (Seculator only).
	if len(points) != 9 {
		t.Fatalf("campaign returned %d points, want 9", len(points))
	}
	for _, p := range points {
		o := p.Outcome
		if o.Runs != c.Trials {
			t.Errorf("%s/%s: %d runs, want %d", p.Design, p.Fault, o.Runs, c.Trials)
		}
		if sum := o.Recovered + o.Aborted + o.FalseNegative + o.Benign + o.Clean; sum != o.Runs {
			t.Errorf("%s/%s: outcome classes sum to %d of %d runs", p.Design, p.Fault, sum, o.Runs)
		}
		switch p.Design {
		case protect.Seculator:
			if o.FalseNegative != 0 {
				t.Errorf("Seculator/%s: %d silent corruptions", p.Fault, o.FalseNegative)
			}
		case protect.Baseline:
			if o.Detected() != 0 {
				t.Errorf("Baseline/%s: claimed %d detections with no integrity machinery",
					p.Fault, o.Detected())
			}
		}
		if p.Fault == KindMACRegister {
			if p.Design != protect.Seculator {
				t.Errorf("mac-register point emitted for %s", p.Design)
			}
			if o.Recovered != o.Runs {
				t.Errorf("mac-register: %+v, want every trial recovered", o)
			}
		}
	}

	// Seculator must actually exercise detection somewhere in the sweep —
	// an all-Clean campaign would mean the injectors never fired.
	detected := 0
	for _, p := range points {
		if p.Design == protect.Seculator {
			detected += p.Outcome.Detected()
		}
	}
	if detected == 0 {
		t.Fatal("no Seculator trial detected anything; campaign exercised nothing")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	c := Campaign{
		Faults:  []Kind{KindBitFlip},
		Rates:   []float64{0.01},
		Designs: []protect.Design{protect.Seculator},
		Trials:  2,
		Seed:    7,
	}
	a, err := Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("point counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestDefaultCampaignRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full default campaign in -short mode")
	}
	c := DefaultCampaign()
	c.Trials = 1 // keep the sweep quick; the shape is what's under test
	points, err := Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("default campaign produced no points")
	}
	for _, p := range points {
		if p.Design == protect.Seculator && p.Outcome.FalseNegative != 0 {
			t.Errorf("Seculator/%s rate %g: silent corruption", p.Fault, p.Rate)
		}
	}
}
