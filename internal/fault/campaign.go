package fault

import (
	"context"
	"fmt"

	"seculator/internal/attack"
	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/parallel"
	"seculator/internal/protect"
	"seculator/internal/resilience"
	"seculator/internal/secure"
	"seculator/internal/workload"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// KindBitFlip is the transient single-bit-upset model (rate-driven).
	KindBitFlip Kind = iota
	// KindStuckAt is the persistent stuck-at-row model (rate-driven).
	KindStuckAt
	// KindBurst is the transient burst-corruption model (rate-driven).
	KindBurst
	// KindReplay is the stale-ciphertext replay model (rate-free).
	KindReplay
	// KindMACRegister is the on-chip MAC-register upset (rate-free,
	// Seculator only — other designs have no layer MAC registers).
	KindMACRegister
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBitFlip:
		return "bit-flip"
	case KindStuckAt:
		return "stuck-at"
	case KindBurst:
		return "burst"
	case KindReplay:
		return "replay"
	case KindMACRegister:
		return "mac-register"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Kinds returns every fault class.
func Kinds() []Kind {
	return []Kind{KindBitFlip, KindStuckAt, KindBurst, KindReplay, KindMACRegister}
}

// Injector is a fault model the campaign can attach and account: the
// mem.Injector hooks plus the delivered-fault counter every model keeps.
type Injector interface {
	mem.Injector
	Injected() int
}

// Outcome tallies the trials of one campaign point.
type Outcome struct {
	Runs          int
	Recovered     int // violation detected, repaired by layer-level retry
	Aborted       int // violation detected, persistent -> run aborted
	FalseNegative int // fault delivered, output corrupted, nothing raised
	Benign        int // fault delivered but harmless (hit padding/unread data)
	Clean         int // injector never fired
}

// Detected returns how many trials raised an integrity violation.
func (o Outcome) Detected() int { return o.Recovered + o.Aborted }

// add folds a single-trial outcome in.
func (o *Outcome) add(t Outcome) {
	o.Runs += t.Runs
	o.Recovered += t.Recovered
	o.Aborted += t.Aborted
	o.FalseNegative += t.FalseNegative
	o.Benign += t.Benign
	o.Clean += t.Clean
}

// Point is one campaign sample: a fault class at a rate against a design.
type Point struct {
	Fault   Kind
	Rate    float64 // 0 for rate-free fault classes
	Design  protect.Design
	Outcome Outcome
}

// Campaign sweeps fault class x rate x design. Seculator runs through the
// full secure.Executor pipeline (so detection can trigger the layer-level
// recovery loop); the per-block designs run the canonical two-layer
// functional workload, where detection is immediate and terminal.
type Campaign struct {
	Faults  []Kind
	Rates   []float64 // applied to the rate-driven classes
	Designs []protect.Design
	Trials  int // independent seeded trials per point
	Seed    int64
	Retry   resilience.Policy // Seculator's recovery policy

	// Network and model seed for the Seculator executor trials; the zero
	// value uses a small two-conv network.
	Network workload.Network
	Model   int64
}

// DefaultCampaign returns a compact but covering sweep.
func DefaultCampaign() Campaign {
	return Campaign{
		Faults: Kinds(),
		Rates:  []float64{0.002, 0.02},
		Designs: []protect.Design{
			protect.Baseline, protect.Secure, protect.TNPU, protect.GuardNN, protect.Seculator,
		},
		Trials: 3,
		Seed:   0x5eed,
		Retry:  resilience.DefaultPolicy(),
	}
}

func defaultNetwork() workload.Network {
	return workload.Network{
		Name: "campaign",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 2, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: workload.Conv, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1},
		},
	}
}

// build constructs the injector for one (kind, rate, trial) cell. The
// rate-driven classes map rate to their natural knob; the rate-free classes
// ignore it.
func build(kind Kind, rate float64, seed int64) Injector {
	switch kind {
	case KindBitFlip:
		return NewBitFlip(rate, seed)
	case KindStuckAt:
		period := uint64(1)
		if rate > 0 && rate < 1 {
			period = uint64(1/rate + 0.5)
		}
		return NewStuckAt(period, uint64(seed%3), uint(seed)&7)
	case KindBurst:
		count := uint64(rate*256 + 0.5)
		if count < 1 {
			count = 1
		}
		return NewBurst(24, count, 4, seed)
	case KindReplay:
		return NewReplay()
	default:
		return nil // KindMACRegister injects on-chip, not through the DRAM
	}
}

// Run executes the campaign and returns one Point per swept cell. ctx
// cancels between trials.
func Run(ctx context.Context, c Campaign) ([]Point, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(c.Faults) == 0 || len(c.Designs) == 0 || c.Trials <= 0 {
		return nil, &resilience.ConfigError{
			Err: fmt.Errorf("fault: campaign needs faults, designs and trials, got %+v", c),
		}
	}
	if c.Network.Name == "" {
		c.Network = defaultNetwork()
	}
	if c.Retry == (resilience.Policy{}) {
		c.Retry = resilience.DefaultPolicy()
	}

	// Enumerate every (kind, rate, design, trial) cell up front — the seed
	// derivation must see the same cell numbering the sequential sweep used —
	// then fan the independent trials out on the worker pool and fold each
	// trial's outcome into its point. Points keep enumeration order and each
	// point's Outcome is a commutative sum, so the result is identical at
	// any worker count.
	type trialJob struct {
		point int // index into out
		kind  Kind
		rate  float64
		d     protect.Design
		trial int
		seed  int64
	}
	var out []Point
	var jobs []trialJob
	cell := int64(0)
	for _, kind := range c.Faults {
		rates := c.Rates
		if kind == KindReplay || kind == KindMACRegister {
			rates = []float64{0} // rate-free classes get a single point
		}
		if len(rates) == 0 {
			rates = []float64{0.01}
		}
		for _, rate := range rates {
			for _, d := range c.Designs {
				cell++
				if kind == KindMACRegister && d != protect.Seculator {
					continue // no layer MAC registers to upset
				}
				out = append(out, Point{Fault: kind, Rate: rate, Design: d})
				for trial := 0; trial < c.Trials; trial++ {
					jobs = append(jobs, trialJob{
						point: len(out) - 1,
						kind:  kind, rate: rate, d: d, trial: trial,
						seed: c.Seed + cell*1009 + int64(trial)*7919,
					})
				}
			}
		}
	}

	outcomes, err := parallel.Map(ctx, 0, jobs, func(ctx context.Context, j trialJob) (Outcome, error) {
		var (
			o   Outcome
			err error
		)
		switch {
		case j.kind == KindMACRegister:
			o, err = macRegisterTrial(j.seed)
		case j.d == protect.Seculator:
			o, err = c.executorTrial(ctx, j.kind, j.rate, j.seed)
		default:
			o, err = designTrial(j.d, j.kind, j.rate, j.seed)
		}
		if err != nil {
			return Outcome{}, fmt.Errorf("fault: %s/%s rate %g trial %d: %w",
				j.d, j.kind, j.rate, j.trial, err)
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		out[j.point].Outcome.add(outcomes[i])
	}
	return out, nil
}

// executorTrial runs the full Seculator pipeline with the injector attached
// and classifies the outcome against the unprotected reference computation.
func (c Campaign) executorTrial(ctx context.Context, kind Kind, rate float64, seed int64) (Outcome, error) {
	in, ws := nn.RandomModel(c.Network, c.Model+seed%13)
	golden, err := nn.ForwardNetwork(c.Network, in, ws)
	if err != nil {
		return Outcome{}, err
	}
	inj := build(kind, rate, seed)
	x := secure.NewExecutor()
	x.Injector = inj
	x.Retry = c.Retry

	res, runErr := x.Run(ctx, c.Network, in, ws)
	o := Outcome{Runs: 1}
	switch {
	case runErr != nil:
		if ctx.Err() != nil {
			return Outcome{}, runErr // cancellation, not a verdict
		}
		o.Aborted = 1
	case res.Recovery.Recovered > 0:
		o.Recovered = 1
	case !res.Output.Equal(golden):
		o.FalseNegative = 1
	case inj != nil && inj.Injected() > 0:
		o.Benign = 1
	default:
		o.Clean = 1
	}
	return o, nil
}

// designTrial drives a per-block design's functional memory through the
// canonical two-layer workload with the injector attached. These designs
// have no recovery machinery: detection is terminal.
func designTrial(d protect.Design, kind Kind, rate float64, seed int64) (Outcome, error) {
	m, macs, dram, err := attack.NewFunctionalMemory(d)
	if err != nil {
		return Outcome{}, err
	}
	inj := build(kind, rate, seed)
	dram.SetInjector(inj)

	res, err := attack.RunMatrix(m, macs, dram, attack.DefaultScenario(), attack.AttackNone)
	if err != nil {
		return Outcome{}, err
	}
	o := Outcome{Runs: 1}
	switch {
	case res.Detected:
		o.Aborted = 1
	case res.Corrupted:
		o.FalseNegative = 1
	case inj != nil && inj.Injected() > 0:
		o.Benign = 1
	default:
		o.Clean = 1
	}
	return o, nil
}

// macRegisterTrial upsets one XOR-MAC register of the functional Seculator
// memory mid-layer, confirms the Equation 1 check catches it, then restarts
// the layer (the recovery primitive) and confirms re-verification passes —
// the on-chip analogue of a recovered transient.
func macRegisterTrial(seed int64) (Outcome, error) {
	dram, err := mem.New(mem.DefaultConfig())
	if err != nil {
		return Outcome{}, err
	}
	sm := protect.NewSeculatorMemory(dram, 0x5ec0_1a70, uint64(seed)|1)

	const tiles, blocks = 2, 2
	plain := func(tile, blk int) []byte {
		b := make([]byte, 64)
		for i := range b {
			b[i] = byte(tile*31 + blk*3 + i + int(seed%7))
		}
		return b
	}
	// Layer 1 writes its outputs.
	sm.BeginLayer(1)
	for t := 0; t < tiles; t++ {
		for b := 0; b < blocks; b++ {
			sm.WriteBlock(uint64(t*blocks+b), uint32(t), 1, uint32(b), plain(t, b))
		}
	}
	// Layer 2 consumes them; the upset hits its first-read register — the
	// live Equation 1 operand — before the deferred check runs. (W and R of
	// the in-flight bank are checked one layer later; IR only by the re-read
	// invariant.)
	readAll := func() {
		for t := 0; t < tiles; t++ {
			for b := 0; b < blocks; b++ {
				sm.ReadInput(uint64(t*blocks+b), 1, uint32(t), 1, uint32(b), true)
			}
		}
	}
	sm.BeginLayer(2)
	readAll()
	sm.TamperMACRegister("FR", byte(1)<<(seed%8))
	o := Outcome{Runs: 1}
	if err := sm.VerifyPreviousLayer(mac.Digest{}); err == nil {
		o.FalseNegative = 1 // Equation 1 operand upset slipped through
		return o, nil
	}
	// Recovery: restart the consumer layer's accumulation, re-read the
	// clean inputs, re-verify.
	sm.RestartLayer()
	readAll()
	if err := sm.VerifyPreviousLayer(mac.Digest{}); err != nil {
		o.Aborted = 1 // persisted through the retry
		return o, nil
	}
	o.Recovered = 1
	return o, nil
}
