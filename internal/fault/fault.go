// Package fault provides deterministic, seeded fault injectors for the
// functional DRAM model and a campaign runner that measures how the secure
// execution path reacts to them.
//
// Injectors implement mem.Injector and attach to a DRAM with SetInjector;
// they corrupt block transfers on the pins (read path: transient unless
// repeated) or the stored payload (write path: persistent until rewritten).
// Every injector draws from its own seeded PRNG, so a campaign run is
// exactly reproducible from its seeds.
//
// The classes model distinct physical phenomena:
//
//   - BitFlip  — independent single-bit upsets on the read path at a
//     configurable per-read rate (transient: a re-fetch reads clean data).
//   - StuckAt  — a faulty row: selected lines always return with one bit
//     forced set (persistent: re-fetching cannot repair it).
//   - Burst    — a contiguous window of reads returns corrupted data
//     (transient burst, e.g. a voltage droop).
//   - Replay   — stale-ciphertext replay: the first overwritten line's old
//     payload is served on every subsequent read (persistent, active
//     tampering — the attack Seculator's VN scheme must catch).
//
// MAC-register corruption — an on-chip fault rather than a pin fault — is
// injected through protect.SeculatorMemory.TamperMACRegister and exercised
// by the campaign runner directly.
package fault

import (
	"bytes"
	"math/rand"
)

// BitFlip flips one random bit of a read payload with probability Rate per
// block read. Transient: the backing store is never touched.
type BitFlip struct {
	Rate float64 // per-read flip probability in [0, 1]
	rng  *rand.Rand
	hits int
}

// NewBitFlip returns a seeded single-bit-upset injector.
func NewBitFlip(rate float64, seed int64) *BitFlip {
	return &BitFlip{Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// OnRead implements mem.Injector.
func (f *BitFlip) OnRead(_ uint64, data []byte) {
	if f.rng.Float64() >= f.Rate {
		return
	}
	bit := f.rng.Intn(len(data) * 8)
	data[bit/8] ^= 1 << (bit % 8)
	f.hits++
}

// OnWrite implements mem.Injector.
func (f *BitFlip) OnWrite(uint64, []byte) {}

// Injected returns how many flips were delivered.
func (f *BitFlip) Injected() int { return f.hits }

// StuckAt models a faulty DRAM row: every read of a line with
// addr % Period == Phase returns with the given bit forced to one.
// Persistent on the read path: retries re-observe the same fault.
type StuckAt struct {
	Period uint64 // line-address period selecting faulty lines
	Phase  uint64 // which residue class is faulty
	Bit    uint   // bit index within the 512-bit block to force
	hits   int
}

// NewStuckAt returns a stuck-at-one injector for lines addr%period == phase.
func NewStuckAt(period, phase uint64, bit uint) *StuckAt {
	if period == 0 {
		period = 1
	}
	return &StuckAt{Period: period, Phase: phase % period, Bit: bit}
}

// OnRead implements mem.Injector.
func (f *StuckAt) OnRead(addr uint64, data []byte) {
	if addr%f.Period != f.Phase {
		return
	}
	i := int(f.Bit/8) % len(data)
	mask := byte(1 << (f.Bit % 8))
	if data[i]&mask == 0 {
		data[i] |= mask
		f.hits++
	}
}

// OnWrite implements mem.Injector.
func (f *StuckAt) OnWrite(uint64, []byte) {}

// Injected returns how many reads the stuck bit actually altered.
func (f *StuckAt) Injected() int { return f.hits }

// Burst corrupts a contiguous window of block reads — reads number
// [Start, Start+Count) since attachment each get Bytes random bytes
// overwritten. Transient: only the in-flight data is corrupted.
type Burst struct {
	Start uint64 // first corrupted read (0-based read ordinal)
	Count uint64 // how many consecutive reads to corrupt
	Bytes int    // bytes overwritten per corrupted read
	rng   *rand.Rand
	reads uint64
	hits  int
}

// NewBurst returns a seeded burst-corruption injector.
func NewBurst(start, count uint64, bytesPerRead int, seed int64) *Burst {
	if bytesPerRead <= 0 {
		bytesPerRead = 4
	}
	return &Burst{Start: start, Count: count, Bytes: bytesPerRead, rng: rand.New(rand.NewSource(seed))}
}

// OnRead implements mem.Injector.
func (f *Burst) OnRead(_ uint64, data []byte) {
	n := f.reads
	f.reads++
	if n < f.Start || n >= f.Start+f.Count {
		return
	}
	for i := 0; i < f.Bytes; i++ {
		data[f.rng.Intn(len(data))] ^= byte(1 + f.rng.Intn(255))
	}
	f.hits++
}

// OnWrite implements mem.Injector.
func (f *Burst) OnWrite(uint64, []byte) {}

// Injected returns how many reads fell inside the burst window.
func (f *Burst) Injected() int { return f.hits }

// Replay mounts a stale-ciphertext replay: it snapshots the first payload
// written to every line, and once a line is overwritten with different
// content (a version-number bump on the partial-sum path), it serves the
// stale snapshot on every subsequent read of that line. Persistent active
// tampering: re-fetching returns the same stale ciphertext.
type Replay struct {
	first  map[uint64][]byte
	target uint64
	armed  bool
	hits   int
}

// NewReplay returns a replay injector; it arms itself on the first
// observed overwrite.
func NewReplay() *Replay {
	return &Replay{first: make(map[uint64][]byte)}
}

// OnWrite implements mem.Injector: snapshot first versions, arm on the
// first overwrite.
func (f *Replay) OnWrite(addr uint64, data []byte) {
	old, seen := f.first[addr]
	if !seen {
		cp := make([]byte, len(data))
		copy(cp, data)
		f.first[addr] = cp
		return
	}
	if !f.armed && !bytes.Equal(old, data) {
		f.armed = true
		f.target = addr
	}
}

// OnRead implements mem.Injector: serve the stale snapshot for the target.
func (f *Replay) OnRead(addr uint64, data []byte) {
	if !f.armed || addr != f.target {
		return
	}
	if stale, ok := f.first[addr]; ok && !bytes.Equal(stale, data) {
		copy(data, stale)
		f.hits++
	}
}

// Armed reports whether an overwrite was observed and the replay mounted.
func (f *Replay) Armed() bool { return f.armed }

// Injected returns how many reads were served stale data.
func (f *Replay) Injected() int { return f.hits }
