package sched

import (
	"sync"

	"seculator/internal/mem"
	"seculator/internal/npu"
	"seculator/internal/workload"
)

// memo.go — memoized mapping search. Map is a pure function of
// (layer, NPU config, DRAM config): enumerate generates the same candidate
// set in the same order and less() imposes a total order with a
// deterministic tie-break, so the winning Choice is identical on every
// call. The serving tier calls Map for the same handful of layers on every
// request (the executor's plan, plus the host endpoint's per-command
// cross-check), which made the mapping search the single largest line item
// in the serve profile. Caching the result is therefore transparent:
// callers observe the same Choice they would have computed, minus the
// enumeration cost.
//
// The returned Choice shares its *dataflow.Mapping with every other caller.
// That is safe because mappings are immutable after enumerate builds them —
// the executor and endpoint only read them (Generate, DeriveWrite).

// mapKey identifies one memoizable search. All three structs are plain
// value types with no pointers, so the key is comparable and hashes by
// content.
type mapKey struct {
	layer workload.Layer
	npu   npu.Config
	dram  mem.Config
}

// mapMemoCap bounds the memo table. The working set is tiny (layers of the
// registered networks × one or two configs); the bound only guards against
// unbounded growth under adversarial layer diversity. On overflow the table
// is cleared rather than LRU-evicted — rebuilding a few hundred entries is
// cheaper than per-hit bookkeeping on this path.
const mapMemoCap = 4096

var mapMemo struct {
	mu sync.RWMutex
	m  map[mapKey]Choice
}

// MapCached is Map with memoization. Errors are not cached: a failing
// search (no feasible mapping) is re-run on every call so callers see the
// live error, but failures are rare and never on the serving hot path.
func MapCached(l workload.Layer, cfg npu.Config, dram mem.Config) (Choice, error) {
	key := mapKey{layer: l, npu: cfg, dram: dram}

	mapMemo.mu.RLock()
	c, ok := mapMemo.m[key]
	mapMemo.mu.RUnlock()
	if ok {
		return c, nil
	}

	c, err := Map(l, cfg, dram)
	if err != nil {
		return Choice{}, err
	}

	mapMemo.mu.Lock()
	if mapMemo.m == nil || len(mapMemo.m) >= mapMemoCap {
		mapMemo.m = make(map[mapKey]Choice)
	}
	mapMemo.m[key] = c
	mapMemo.mu.Unlock()
	return c, nil
}

// MapNetworkCached is MapNetwork built on MapCached: one memo lookup per
// layer instead of one enumeration per layer.
func MapNetworkCached(net workload.Network, cfg npu.Config, dram mem.Config) ([]Choice, error) {
	choices := make([]Choice, len(net.Layers))
	for i, l := range net.Layers {
		c, err := MapCached(l, cfg, dram)
		if err != nil {
			return nil, err
		}
		choices[i] = c
	}
	return choices, nil
}
