package sched

import (
	"testing"

	"seculator/internal/dataflow"
	"seculator/internal/mem"
	"seculator/internal/npu"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

func cfg() npu.Config { return npu.DefaultConfig() }

func dcfg() mem.Config { return mem.DefaultConfig() }

func TestMapSimpleConv(t *testing.T) {
	l := workload.Layer{
		Name: "conv", Type: workload.Conv,
		C: 64, H: 56, W: 56, K: 64, R: 3, S: 3, Stride: 1,
	}
	c, err := Map(l, cfg(), dcfg())
	if err != nil {
		t.Fatal(err)
	}
	if c.Mapping == nil || c.Mapping.Validate() != nil {
		t.Fatal("invalid mapping returned")
	}
	if c.BufferBytes > cfg().GlobalBufferBytes {
		t.Fatalf("mapping exceeds GB: %d", c.BufferBytes)
	}
	if c.DataBlocks == 0 || c.ComputePasses == 0 {
		t.Fatalf("degenerate choice: %+v", c)
	}
}

// The analytic traffic estimate must agree exactly with the simulated
// event stream — the mapper and the simulator share one ground truth.
func TestEstimateMatchesSimulation(t *testing.T) {
	layers := []workload.Layer{
		{Name: "conv3x3", Type: workload.Conv, C: 32, H: 28, W: 28, K: 64, R: 3, S: 3, Stride: 1},
		{Name: "conv-stride2", Type: workload.Conv, C: 16, H: 56, W: 56, K: 32, R: 3, S: 3, Stride: 2},
		{Name: "dw", Type: workload.Depthwise, C: 64, H: 28, W: 28, K: 64, R: 3, S: 3, Stride: 1},
		{Name: "pw", Type: workload.Pointwise, C: 64, H: 28, W: 28, K: 128, R: 1, S: 1, Stride: 1},
		{Name: "pool", Type: workload.Pool, C: 32, H: 28, W: 28, K: 32, R: 2, S: 2, Stride: 2, Valid: true},
		{Name: "fc", Type: workload.FC, C: 1024, H: 1, W: 1, K: 1000, R: 1, S: 1, Stride: 1},
	}
	for _, l := range layers {
		c, err := Map(l, cfg(), dcfg())
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		var simBlocks uint64
		err = dataflow.Generate(c.Mapping, func(e dataflow.Event) bool {
			simBlocks += uint64(e.Blocks)
			return true
		})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if simBlocks != c.DataBlocks {
			t.Errorf("%s: estimate %d != simulated %d (mapping %s)",
				l.Name, c.DataBlocks, simBlocks, c.Mapping.Name)
		}
	}
}

func TestMapNetworkAllBenchmarks(t *testing.T) {
	for _, n := range workload.All() {
		choices, err := MapNetwork(n, cfg(), dcfg())
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if len(choices) != len(n.Layers) {
			t.Fatalf("%s: %d choices for %d layers", n.Name, len(choices), len(n.Layers))
		}
		for i, c := range choices {
			if c.BufferBytes > cfg().GlobalBufferBytes {
				t.Errorf("%s layer %d: GB overflow %d", n.Name, i, c.BufferBytes)
			}
			if c.Mapping.Validate() != nil {
				t.Errorf("%s layer %d: invalid mapping", n.Name, i)
			}
		}
	}
}

// The mapper must beat (or match) a naive minimal-tile mapping on traffic.
func TestMapperBeatsNaive(t *testing.T) {
	l := workload.Layer{
		Name: "conv", Type: workload.Conv,
		C: 128, H: 28, W: 28, K: 256, R: 3, S: 3, Stride: 1,
	}
	best, err := Map(l, cfg(), dcfg())
	if err != nil {
		t.Fatal(err)
	}
	naive := &dataflow.Mapping{
		Name:    "naive",
		Reuse:   dataflow.InputReuse,
		Order:   dataflow.LoopOrder{dataflow.LoopS, dataflow.LoopC, dataflow.LoopK},
		AlphaHW: l.OutH(), AlphaC: l.C, AlphaK: l.K,
		IfmapTileBlocks:  tensor.TileBlocks(3, l.W, 1),
		OfmapTileBlocks:  tensor.TileBlocks(1, l.OutW(), 1),
		WeightTileBlocks: 1,
	}
	if EstimateDataBlocks(naive) < best.DataBlocks {
		t.Fatalf("mapper (%d blocks) lost to naive mapping (%d blocks)",
			best.DataBlocks, EstimateDataBlocks(naive))
	}
}

func TestInputRowsHalo(t *testing.T) {
	l := workload.Layer{Type: workload.Conv, C: 3, H: 56, W: 56, K: 8, R: 3, S: 3, Stride: 1}
	if got := inputRows(l, 8); got != 10 {
		t.Fatalf("inputRows(8) = %d, want 10", got)
	}
	// Stride-2: 8 output rows need 8*2+3-2 = 17 input rows.
	l.Stride = 2
	if got := inputRows(l, 8); got != 17 {
		t.Fatalf("stride-2 inputRows(8) = %d, want 17", got)
	}
	// Clamped to the fmap height.
	if got := inputRows(l, 100); got != 56 {
		t.Fatalf("clamped inputRows = %d, want 56", got)
	}
}

func TestCandidates(t *testing.T) {
	for _, v := range bandCandidates(56) {
		if v < 1 || v > 56 {
			t.Fatalf("band candidate %d out of range", v)
		}
	}
	gs := groupCandidates(48)
	has48 := false
	for _, v := range gs {
		if v == 48 {
			has48 = true
		}
		if v < 1 || v > 48 {
			t.Fatalf("group candidate %d out of range", v)
		}
	}
	if !has48 {
		t.Fatal("groupCandidates must include n itself")
	}
}

func TestMapRejectsInvalid(t *testing.T) {
	if _, err := Map(workload.Layer{}, cfg(), dcfg()); err == nil {
		t.Fatal("invalid layer accepted")
	}
	l := workload.Layer{Type: workload.Conv, C: 1, H: 1, W: 1, K: 1, R: 1, S: 1, Stride: 1}
	if _, err := Map(l, npu.Config{}, dcfg()); err == nil {
		t.Fatal("invalid config accepted")
	}
	// A layer whose smallest tile cannot fit an absurdly small GB.
	big := workload.Layer{Type: workload.Conv, C: 1, H: 1, W: 10000, K: 1, R: 1, S: 1, Stride: 1}
	small := npu.Config{Rows: 4, Cols: 4, GlobalBufferBytes: 64, FreqHz: 1}
	if _, err := Map(big, small, dcfg()); err == nil {
		t.Fatal("infeasible layer mapped")
	}
}

// Depthwise mappings must re-fetch per output-channel group (K encloses S).
func TestDepthwiseOrder(t *testing.T) {
	l := workload.Layer{Name: "dw", Type: workload.Depthwise, C: 64, H: 28, W: 28, K: 64, R: 3, S: 3, Stride: 1}
	c, err := Map(l, cfg(), dcfg())
	if err != nil {
		t.Fatal(err)
	}
	ord := c.Mapping.Order
	if len(ord) > 0 && ord[len(ord)-1] == dataflow.LoopK && c.Mapping.Bound(dataflow.LoopS) > 1 {
		t.Fatalf("depthwise mapping has K innermost: %v", ord)
	}
	if c.Mapping.AlphaC != 1 {
		t.Fatalf("depthwise AlphaC = %d, want 1", c.Mapping.AlphaC)
	}
}
