// Package sched maps network layers onto the NPU: for each layer it
// searches the space of tile sizes and loop orders for the mapping with the
// least DRAM data traffic that fits the global buffer (double-buffered) —
// the role Timeloop plays in the paper's methodology (see DESIGN.md for the
// substitution argument).
//
// Tiles span full output rows (a row band of OHT output rows x OutW
// columns), CT input channels and KT output channels. Candidate loop
// orders cover the paper's reuse styles: input reuse with channel-major or
// spatial-major movement, and output reuse.
package sched

import (
	"fmt"
	"sort"

	"seculator/internal/dataflow"
	"seculator/internal/mem"
	"seculator/internal/npu"
	"seculator/internal/sim"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

// Choice is the selected mapping for one layer, with the footprint and
// traffic estimates that justified it.
type Choice struct {
	Layer   workload.Layer
	Mapping *dataflow.Mapping

	OHT int // output-row band height
	CT  int // input-channel group
	KT  int // output-channel group

	// Per-pass compute shape for the timing model.
	PassPixels int // output positions per pass (OHT * OutW)
	PassDepth  int // reduction MACs per output (CT * R * S)

	DataBlocks      uint64     // estimated DRAM data blocks (reads + writes)
	EstimatedCycles sim.Cycles // estimated layer time: max(compute, memory)
	BufferBytes     int        // double-buffered GB footprint
	ComputePasses   int        // number of tile passes
	IfmapTileRows   int        // input rows per tile including halo
	WeightResident  bool
}

// Map selects a mapping for the layer under the NPU and DRAM
// configurations. Candidates are ranked by their bottleneck time —
// max(compute cycles, data-transfer cycles) — so a traffic-minimal mapping
// never wins by drowning the array in tiny tile passes.
func Map(l workload.Layer, cfg npu.Config, dram mem.Config) (Choice, error) {
	if err := l.Validate(); err != nil {
		return Choice{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Choice{}, err
	}
	if err := dram.Validate(); err != nil {
		return Choice{}, err
	}

	best := Choice{}
	found := false
	for _, cand := range enumerate(l, cfg, dram) {
		if !found || less(cand, best) {
			best = cand
			found = true
		}
	}
	if !found {
		return Choice{}, fmt.Errorf("sched: no feasible mapping for layer %q (GB %d bytes)",
			l.Name, cfg.GlobalBufferBytes)
	}
	return best, nil
}

// MapNetwork maps every layer of a network.
func MapNetwork(n workload.Network, cfg npu.Config, dram mem.Config) ([]Choice, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	out := make([]Choice, len(n.Layers))
	for i, l := range n.Layers {
		c, err := Map(l, cfg, dram)
		if err != nil {
			return nil, fmt.Errorf("sched: %s: %w", n.Name, err)
		}
		out[i] = c
	}
	return out, nil
}

// less orders candidates by estimated traffic, then by fewer passes (less
// fill/drain overhead), then by larger buffers (burst efficiency), and
// finally by mapping name so the choice is a total order: the mapper must
// be deterministic for results to be reproducible run-to-run.
func less(a, b Choice) bool {
	if a.EstimatedCycles != b.EstimatedCycles {
		return a.EstimatedCycles < b.EstimatedCycles
	}
	if a.DataBlocks != b.DataBlocks {
		return a.DataBlocks < b.DataBlocks
	}
	if a.ComputePasses != b.ComputePasses {
		return a.ComputePasses < b.ComputePasses
	}
	if a.BufferBytes != b.BufferBytes {
		return a.BufferBytes > b.BufferBytes
	}
	return a.Mapping.Name < b.Mapping.Name
}

// orderSpec pairs a loop order with its reuse style.
type orderSpec struct {
	reuse dataflow.ReuseStyle
	order dataflow.LoopOrder
	name  string
}

func enumerate(l workload.Layer, cfg npu.Config, dram mem.Config) []Choice {
	var out []Choice
	outH := l.OutH()
	reduceC := l.ReductionChannels()
	perChannel := l.PerChannel()

	for _, oht := range bandCandidates(outH) {
		alphaHW := ceilDiv(outH, oht)
		ifRows := inputRows(l, oht)
		for _, ct := range groupCandidates(reduceC) {
			alphaC := ceilDiv(reduceC, ct)
			for _, kt := range groupCandidates(l.K) {
				alphaK := ceilDiv(l.K, kt)
				for _, spec := range orderSpecs(alphaHW, alphaC, alphaK, perChannel) {
					c, ok := build(l, cfg, dram, spec, oht, ct, kt, ifRows)
					if ok {
						out = append(out, c)
					}
				}
			}
		}
	}
	return out
}

// orderSpecs returns the loop orders to try. Per-channel layers (depthwise,
// pool) need each output-channel group to stream its own input channels, so
// K must enclose S.
func orderSpecs(alphaHW, alphaC, alphaK int, perChannel bool) []orderSpec {
	if perChannel {
		return []orderSpec{
			{dataflow.OutputReuse, order(alphaK, dataflow.LoopK, alphaHW, dataflow.LoopS, 1, dataflow.LoopC), "perchan-KS"},
		}
	}
	return []orderSpec{
		{dataflow.InputReuse, order(alphaHW, dataflow.LoopS, alphaC, dataflow.LoopC, alphaK, dataflow.LoopK), "ir-SCK"},
		{dataflow.InputReuse, order(alphaC, dataflow.LoopC, alphaHW, dataflow.LoopS, alphaK, dataflow.LoopK), "ir-CSK"},
		{dataflow.OutputReuse, order(alphaHW, dataflow.LoopS, alphaK, dataflow.LoopK, alphaC, dataflow.LoopC), "or-SKC"},
		{dataflow.OutputReuse, order(alphaK, dataflow.LoopK, alphaHW, dataflow.LoopS, alphaC, dataflow.LoopC), "or-KSC"},
	}
}

// order builds a LoopOrder containing only loops with bound > 1, in the
// listed outer-to-inner arrangement.
func order(b1 int, v1 dataflow.LoopVar, b2 int, v2 dataflow.LoopVar, b3 int, v3 dataflow.LoopVar) dataflow.LoopOrder {
	var o dataflow.LoopOrder
	if b1 > 1 {
		o = append(o, v1)
	}
	if b2 > 1 {
		o = append(o, v2)
	}
	if b3 > 1 {
		o = append(o, v3)
	}
	return o
}

func build(l workload.Layer, cfg npu.Config, dram mem.Config, spec orderSpec, oht, ct, kt, ifRows int) (Choice, bool) {
	outH, outW := l.OutH(), l.OutW()
	alphaHW := ceilDiv(outH, oht)
	alphaC := ceilDiv(l.ReductionChannels(), ct)
	alphaK := ceilDiv(l.K, kt)

	// Per-channel layers stream one input-channel group per output group.
	ifChans := ct
	if l.PerChannel() {
		ifChans = kt
	}
	ifBlocks := tensor.TileBlocks(ifRows, l.W, ifChans)
	ofBlocks := tensor.TileBlocks(oht, outW, kt)
	var wBlocks int
	if l.Type != workload.Pool && l.Type != workload.Upsample {
		wBlocks = tensor.CeilDiv(kt*ct*l.R*l.S*tensor.PixelBytes, tensor.BlockBytes)
	}

	// Double-buffered global buffer footprint.
	bufBytes := 2 * (ifBlocks + ofBlocks + wBlocks) * tensor.BlockBytes
	if bufBytes > cfg.GlobalBufferBytes {
		return Choice{}, false
	}

	// Whole-layer weight residency: weights plus double-buffered tiles fit.
	weightBytes := int(l.Params()) * tensor.PixelBytes
	resident := wBlocks > 0 &&
		weightBytes+2*(ifBlocks+ofBlocks)*tensor.BlockBytes <= cfg.GlobalBufferBytes

	m := &dataflow.Mapping{
		Name:             fmt.Sprintf("%s/%s oht=%d ct=%d kt=%d", l.Name, spec.name, oht, ct, kt),
		Reuse:            spec.reuse,
		Order:            spec.order,
		AlphaHW:          alphaHW,
		AlphaC:           alphaC,
		AlphaK:           alphaK,
		IfmapTileBlocks:  ifBlocks,
		OfmapTileBlocks:  ofBlocks,
		WeightTileBlocks: wBlocks,
		WeightsResident:  resident,
		PerChannel:       l.PerChannel(),
	}
	if m.Validate() != nil {
		return Choice{}, false
	}
	passes := alphaHW * alphaC * alphaK
	pixels := oht * outW
	depth := ct * l.R * l.S
	blocks := EstimateDataBlocks(m)
	compute := cfg.LayerComputeCycles(passes, pixels, kt, depth)
	memory := dram.LatencyCycles.Add(sim.Cycles(float64(blocks)/dram.BlocksPerCycle + 0.999999))
	return Choice{
		Layer:           l,
		Mapping:         m,
		OHT:             oht,
		CT:              ct,
		KT:              kt,
		PassPixels:      pixels,
		PassDepth:       depth,
		DataBlocks:      blocks,
		EstimatedCycles: compute.Max(memory),
		BufferBytes:     bufBytes,
		ComputePasses:   passes,
		IfmapTileRows:   ifRows,
		WeightResident:  resident,
	}, true
}

// EstimateDataBlocks computes the DRAM data blocks a mapping moves,
// analytically mirroring the dataflow generator's fetch/evict rules.
// Tests assert exact agreement with the simulated event stream.
func EstimateDataBlocks(m *dataflow.Mapping) uint64 {
	aS := uint64(m.Bound(dataflow.LoopS))
	aC := uint64(m.Bound(dataflow.LoopC))
	aK := uint64(m.Bound(dataflow.LoopK))
	innermost := dataflow.LoopK
	if n := len(m.Order); n > 0 {
		innermost = m.Order[n-1]
	}

	stationary := m.Reuse == dataflow.OutputReuse || aC == 1 || innermost == dataflow.LoopC

	var total uint64
	// Ofmap writes and partial-sum reads.
	if stationary {
		total += aK * aS * uint64(m.OfmapTileBlocks)
	} else {
		total += aK * aS * aC * uint64(m.OfmapTileBlocks)       // writes
		total += aK * aS * (aC - 1) * uint64(m.OfmapTileBlocks) // reads
	}
	// Ifmap reads.
	ifFetches := aC * aS
	if m.PerChannel {
		ifFetches = aK * aS
	} else if aK > 1 && innermost != dataflow.LoopK {
		ifFetches *= aK
	}
	total += ifFetches * uint64(m.IfmapTileBlocks)
	// Weight reads.
	if m.WeightTileBlocks > 0 {
		wFetches := aK * aC
		if !m.WeightsResident && aS > 1 && innermost != dataflow.LoopS {
			wFetches *= aS
		}
		total += wFetches * uint64(m.WeightTileBlocks)
	}
	return total
}

// inputRows returns the input rows one output band of oht rows needs,
// including the convolution halo. Upsampling bands need only the rows they
// expand from.
func inputRows(l workload.Layer, oht int) int {
	var rows int
	if l.Type == workload.Upsample {
		rows = ceilDiv(oht, l.Stride)
	} else {
		rows = oht*l.Stride + l.R - l.Stride
	}
	if rows > l.H {
		rows = l.H
	}
	return rows
}

// bandCandidates returns candidate output-band heights, sorted.
func bandCandidates(outH int) []int {
	set := map[int]bool{}
	for _, v := range []int{1, 2, 4, 7, 8, 14, 16, 28, 32, 56, outH} {
		if v >= 1 && v <= outH {
			set[v] = true
		}
	}
	return sortedKeys(set)
}

// groupCandidates returns candidate channel-group sizes: powers of two up
// to n, plus n itself, sorted.
func groupCandidates(n int) []int {
	set := map[int]bool{n: true}
	for v := 1; v <= n; v *= 2 {
		set[v] = true
	}
	return sortedKeys(set)
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
