package workload

import "testing"

func TestPreprocStageStyles(t *testing.T) {
	s1, err := PreprocStage("s1", Style1, 3, 32, 32, 3, 0)
	if err != nil || s1.Type != Depthwise || s1.K != 3 {
		t.Fatalf("style-1: %+v %v", s1, err)
	}
	s2, err := PreprocStage("s2", Style2, 3, 32, 32, 1, 0)
	if err != nil || s2.K != 1 {
		t.Fatalf("style-2: %+v %v", s2, err)
	}
	s3, err := PreprocStage("s3", Style3, 3, 32, 32, 1, 8)
	if err != nil || s3.K != 8 {
		t.Fatalf("style-3: %+v %v", s3, err)
	}
	if _, err := PreprocStage("bad", Style3, 3, 32, 32, 1, 0); err == nil {
		t.Fatal("style-3 without k accepted")
	}
	if _, err := PreprocStage("bad", Style1, 0, 32, 32, 1, 0); err == nil {
		t.Fatal("zero channels accepted")
	}
	if _, err := PreprocStage("bad", PreprocStyle(9), 3, 32, 32, 1, 0); err == nil {
		t.Fatal("unknown style accepted")
	}
}

func TestPreprocStyleString(t *testing.T) {
	for _, s := range []PreprocStyle{Style1, Style2, Style3, PreprocStyle(9)} {
		if s.String() == "" {
			t.Fatalf("empty string for style %d", s)
		}
	}
}

func TestPreprocPipelineValidates(t *testing.T) {
	n, err := PreprocPipeline(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 5 {
		t.Fatalf("pipeline layers = %d", len(n.Layers))
	}
	// The pipeline ends with a single downsampled channel.
	last := n.Layers[len(n.Layers)-1]
	if last.K != 1 || last.OutH() != 32 {
		t.Fatalf("pipeline output: K=%d OutH=%d", last.K, last.OutH())
	}
	if _, err := PreprocPipeline(0, 64); err == nil {
		t.Fatal("invalid size accepted")
	}
}
