package scenario_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"seculator/internal/workload"
	"seculator/internal/workload/scenario"
)

// A short constant-rate mix end to end: phases come back in curve order
// with a complete latency distribution, the overall fold accounts for the
// phase traffic, and the residency counters show the hit path.
func TestScenarioRunSteadyMix(t *testing.T) {
	m := workload.Mix{
		Name:         "T1",
		Title:        "test-steady",
		Models:       []workload.ModelShare{{Network: "Mini", Weight: 1}},
		Tenants:      2,
		SessionRatio: 0.5,
		Arrival:      workload.ArrivalCurve{Kind: workload.ArrivalConstant, RPS: 60, Poisson: true},
		Residency:    true,
		FixedModel:   true,
	}
	res, err := scenario.Run(context.Background(), m, scenario.Options{
		Duration: 600 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 1 || res.Phases[0].Name != "steady" {
		t.Fatalf("phases %+v, want one steady phase", res.Phases)
	}
	o := res.Overall
	if o.OK == 0 {
		t.Fatalf("no requests completed: %+v", o)
	}
	if o.P50ms <= 0 || o.P95ms < o.P50ms || o.P99ms < o.P95ms || o.MaxMs < o.P99ms {
		t.Fatalf("percentiles out of order: %+v", o)
	}
	if o.Sent != res.Phases[0].Sent || o.OK != res.Phases[0].OK {
		t.Fatalf("overall fold disagrees with the single phase: %+v vs %+v", o, res.Phases[0])
	}
	if o.ResidencyHitRate == 0 && o.ResidencyHits == 0 {
		t.Fatalf("fixed-model residency mix recorded no hits: %+v", o)
	}
	if o.SessionsOpened == 0 {
		t.Fatalf("session-ratio mix opened no sessions: %+v", o)
	}
	if o.ShedRate < 0 || o.ShedRate > 1 {
		t.Fatalf("shed rate %v out of range", o.ShedRate)
	}
}

// A burst curve expands to calm/burst phases and each reports its own
// distribution.
func TestScenarioRunBurstPhases(t *testing.T) {
	m := workload.Mix{
		Name:       "T2",
		Title:      "test-burst",
		Models:     []workload.ModelShare{{Network: "Mini", Weight: 1}},
		Tenants:    1,
		Arrival:    workload.ArrivalCurve{Kind: workload.ArrivalBurst, RPS: 30, PeakRPS: 120, Steps: 1, Poisson: true},
		Residency:  true,
		FixedModel: true,
	}
	res, err := scenario.Run(context.Background(), m, scenario.Options{
		Duration: 800 * time.Millisecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("burst mix ran %d phases, want 2", len(res.Phases))
	}
	if res.Phases[0].Name != "calm-1" || res.Phases[1].Name != "burst-1" {
		t.Fatalf("phase order %q, %q", res.Phases[0].Name, res.Phases[1].Name)
	}
	if res.Phases[1].TargetRPS <= res.Phases[0].TargetRPS {
		t.Fatalf("burst phase rate %v not above calm %v", res.Phases[1].TargetRPS, res.Phases[0].TargetRPS)
	}
	for _, ph := range res.Phases {
		if ph.OK == 0 {
			t.Fatalf("phase %s completed nothing: %+v", ph.Name, ph)
		}
	}
}

// An attack-laced mix: the adversarial stream lands real breaches (server
// counters move) while honest traffic keeps completing.
func TestScenarioRunAttackMix(t *testing.T) {
	m := workload.Mix{
		Name:           "T3",
		Title:          "test-attack",
		Models:         []workload.ModelShare{{Network: "Mini", Weight: 1}},
		Tenants:        1,
		AttackFraction: 0.4,
		Arrival:        workload.ArrivalCurve{Kind: workload.ArrivalConstant, RPS: 60, Poisson: true},
		Residency:      true,
		FixedModel:     true,
	}
	res, err := scenario.Run(context.Background(), m, scenario.Options{
		Duration: 700 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.OK == 0 {
		t.Fatalf("honest traffic starved: %+v", res.Overall)
	}
	if res.Attack == nil || res.Attack.Sent == 0 {
		t.Fatalf("attack stream sent nothing: %+v", res.Attack)
	}
	if res.Attack.Breached == 0 && res.Attack.Quarantined == 0 {
		t.Fatalf("attack stream neither breached nor got quarantined: %+v", res.Attack)
	}
	if res.Overall.Breaches == 0 {
		t.Fatalf("server breach counters did not move: %+v", res.Overall)
	}
}

// A 2-replica gateway mix attributes completed requests to replicas.
func TestScenarioRunGatewayMix(t *testing.T) {
	m := workload.Mix{
		Name:       "T4",
		Title:      "test-gateway",
		Models:     []workload.ModelShare{{Network: "Mini", Weight: 1}},
		Tenants:    2,
		Arrival:    workload.ArrivalCurve{Kind: workload.ArrivalConstant, RPS: 80, Poisson: true},
		Residency:  true,
		FixedModel: true,
		Replicas:   2,
	}
	res, err := scenario.Run(context.Background(), m, scenario.Options{
		Duration: 600 * time.Millisecond, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.OK == 0 {
		t.Fatalf("no gateway traffic completed: %+v", res.Overall)
	}
	if len(res.Overall.ByReplica) == 0 {
		t.Fatalf("gateway mix attributed nothing to replicas: %+v", res.Overall)
	}
	var attributed int
	for _, n := range res.Overall.ByReplica {
		attributed += n
	}
	if attributed != res.Overall.OK {
		t.Fatalf("replica attribution %d != %d OK", attributed, res.Overall.OK)
	}
}

func suiteWith(p99 float64, shed float64, ok int) scenario.Suite {
	return scenario.Suite{
		Schema: 1, Suite: "workloads",
		Mixes: []scenario.MixResult{{
			Name: "W1", Title: "t",
			Overall: scenario.PhaseResult{Name: "overall", OK: ok, Sent: ok, P99ms: p99, ShedRate: shed},
		}},
	}
}

// The gate: passes inside tolerance, flags p99 blowups, shed-rate growth,
// missing mixes, and total stalls.
func TestGate(t *testing.T) {
	base := suiteWith(10, 0.05, 100)

	if v := scenario.Gate(suiteWith(20, 0.1, 90), base, scenario.GateOptions{}); len(v) != 0 {
		t.Fatalf("in-tolerance run flagged: %v", v)
	}
	// 10ms baseline * 2.5 = 25ms, absolute floor 10+50 = 60ms; 70ms must fail.
	if v := scenario.Gate(suiteWith(70, 0.05, 90), base, scenario.GateOptions{}); len(v) != 1 || !strings.Contains(v[0], "p99") {
		t.Fatalf("p99 regression not flagged: %v", v)
	}
	if v := scenario.Gate(suiteWith(10, 0.3, 90), base, scenario.GateOptions{}); len(v) != 1 || !strings.Contains(v[0], "shed") {
		t.Fatalf("shed regression not flagged: %v", v)
	}
	if v := scenario.Gate(scenario.Suite{Suite: "workloads"}, base, scenario.GateOptions{}); len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("missing mix not flagged: %v", v)
	}
	if v := scenario.Gate(suiteWith(1, 0, 0), base, scenario.GateOptions{}); len(v) != 1 || !strings.Contains(v[0], "no requests") {
		t.Fatalf("stalled mix not flagged: %v", v)
	}
	// Tighter explicit tolerances bite where the defaults pass.
	if v := scenario.Gate(suiteWith(20, 0.1, 90), base, scenario.GateOptions{P99Factor: 1.5, P99SlackMs: 1, ShedSlack: 0.01}); len(v) != 2 {
		t.Fatalf("tight tolerances found %d violations, want 2: %v", len(v), v)
	}
}

// Suite JSON round-trips and the summary table renders every mix row.
func TestSuiteEncodeDecodeTable(t *testing.T) {
	s := suiteWith(12.5, 0.02, 42)
	s.Mixes[0].Phases = []scenario.PhaseResult{{Name: "steady", TargetRPS: 60, OK: 42, Sent: 42, P99ms: 12.5}}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := scenario.DecodeSuite(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mixes[0].Overall.P99ms != 12.5 || back.Mixes[0].Phases[0].Name != "steady" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if _, err := scenario.DecodeSuite([]byte(`{"suite":"other"}`)); err == nil {
		t.Fatal("foreign document accepted")
	}
	tbl := s.Table()
	for _, want := range []string{"W1", "steady", "overall", "p99ms"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}
