// report.go — the serialized shape of a workload-suite run
// (BENCH_workloads.json), the human summary table, and the regression gate
// that compares a fresh run against the committed snapshot.
package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Suite is one full run of the workload mixes — the top-level document of
// BENCH_workloads.json.
type Suite struct {
	Schema     int     `json:"schema"`
	Suite      string  `json:"suite"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	DurationMs float64 `json:"duration_ms"`
	// GeneratedAt is stamped by the CLI (RFC 3339); the library leaves it
	// empty so library runs stay deterministic.
	GeneratedAt string      `json:"generated_at,omitempty"`
	Mixes       []MixResult `json:"mixes"`
}

// MixResult is one mix's trajectory: the per-phase results in curve order
// plus the folded overall view the gate thresholds apply to.
type MixResult struct {
	Name      string        `json:"name"`
	Title     string        `json:"title"`
	Replicas  int           `json:"replicas,omitempty"`
	ElapsedMs float64       `json:"elapsed_ms"`
	Phases    []PhaseResult `json:"phases"`
	Overall   PhaseResult   `json:"overall"`
	Attack    *AttackResult `json:"attack,omitempty"`
	GC        GCSummary     `json:"gc"`
}

// PhaseResult is the outcome of one constant-rate phase (or the overall
// fold): client-side latency distribution and accounting merged across the
// mix's streams, plus the server-side counter deltas read around the phase.
type PhaseResult struct {
	Name       string  `json:"name"`
	TargetRPS  float64 `json:"target_rps,omitempty"`
	DurationMs float64 `json:"duration_ms,omitempty"`

	Sent           int            `json:"sent"`
	OK             int            `json:"ok"`
	Shed           int            `json:"shed"`
	Errors         map[string]int `json:"errors,omitempty"`
	SessionsOpened int            `json:"sessions_opened,omitempty"`

	P50ms       float64 `json:"p50_ms"`
	P95ms       float64 `json:"p95_ms"`
	P99ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	AchievedRPS float64 `json:"achieved_rps"`

	// ShedRate is the refused share of offered load: generator concurrency
	// shed plus server 429/451 classes, over sent.
	ShedRate float64 `json:"shed_rate"`
	// ShedByReason is the server-side shed counter delta (rate, queue,
	// quarantine) summed across tenants and replicas.
	ShedByReason map[string]int `json:"shed_by_reason,omitempty"`

	// ResidencyHits counts OK requests that rode pinned weights (client
	// view); ResidencyHitRate is hits/(hits+misses) from the server's
	// residency counters over the phase window.
	ResidencyHits    int     `json:"residency_hits,omitempty"`
	ResidencyHitRate float64 `json:"residency_hit_rate"`
	// Breaches is the server-side tenant breach counter delta.
	Breaches int `json:"breaches,omitempty"`

	// ByReplica counts completed requests per serving replica (gateway
	// mixes only).
	ByReplica map[string]int `json:"by_replica,omitempty"`
}

// AttackResult summarizes the adversarial stream of an attack-laced mix.
type AttackResult struct {
	Sent        int `json:"sent"`
	Breached    int `json:"breached"`
	Quarantined int `json:"quarantined"`
	RateLimited int `json:"rate_limited"`
}

// GCSummary is the process allocation churn over a mix, normalized
// per 1000 offered requests.
type GCSummary struct {
	AllocsPer1k float64 `json:"allocs_per_1k"`
	KiBPer1k    float64 `json:"kib_per_1k"`
	Cycles      uint32  `json:"gc_cycles"`
}

// Encode renders the suite as indented JSON.
func (s Suite) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodeSuite parses a BENCH_workloads.json document.
func DecodeSuite(data []byte) (Suite, error) {
	var s Suite
	if err := json.Unmarshal(data, &s); err != nil {
		return Suite{}, fmt.Errorf("scenario: parsing suite: %w", err)
	}
	if s.Suite != "workloads" {
		return Suite{}, fmt.Errorf("scenario: not a workload suite document (suite=%q)", s.Suite)
	}
	return s, nil
}

// Mix returns the named mix result, or nil.
func (s Suite) Mix(name string) *MixResult {
	for i := range s.Mixes {
		if s.Mixes[i].Name == name {
			return &s.Mixes[i]
		}
	}
	return nil
}

// Table renders the plotter-style summary: one row per phase plus an
// overall row per mix.
func (s Suite) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-18s %-9s %8s %8s %8s %8s %8s %7s %6s %7s\n",
		"mix", "title", "phase", "rps", "p50ms", "p95ms", "p99ms", "ok/s", "shed%", "ok", "res-hit")
	line := strings.Repeat("-", 102)
	fmt.Fprintln(&b, line)
	for _, m := range s.Mixes {
		for _, ph := range m.Phases {
			fmt.Fprintf(&b, "%-4s %-18s %-9s %8.1f %8.2f %8.2f %8.2f %8.1f %6.1f%% %6d %6.0f%%\n",
				m.Name, m.Title, ph.Name, ph.TargetRPS, ph.P50ms, ph.P95ms, ph.P99ms,
				ph.AchievedRPS, ph.ShedRate*100, ph.OK, ph.ResidencyHitRate*100)
		}
		o := m.Overall
		fmt.Fprintf(&b, "%-4s %-18s %-9s %8s %8.2f %8.2f %8.2f %8.1f %6.1f%% %6d %6.0f%%\n",
			m.Name, m.Title, "overall", "", o.P50ms, o.P95ms, o.P99ms,
			o.AchievedRPS, o.ShedRate*100, o.OK, o.ResidencyHitRate*100)
		if m.Attack != nil {
			fmt.Fprintf(&b, "%-4s %-18s %-9s  attack: %d sent, %d breached, %d quarantined, %d rate-limited\n",
				m.Name, m.Title, "", m.Attack.Sent, m.Attack.Breached, m.Attack.Quarantined, m.Attack.RateLimited)
		}
		if len(m.Overall.ByReplica) > 0 {
			names := make([]string, 0, len(m.Overall.ByReplica))
			for n := range m.Overall.ByReplica {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprintf(&b, "%-4s %-18s %-9s  replicas:", m.Name, m.Title, "")
			for _, n := range names {
				fmt.Fprintf(&b, " %s=%d", n, m.Overall.ByReplica[n])
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintln(&b, line)
	}
	return b.String()
}

// GateOptions are the regression tolerances. The defaults absorb CI-class
// scheduling noise: latency must not regress past max(P99Factor × baseline,
// baseline + P99SlackMs), and the shed rate must not grow by more than
// ShedSlack absolute. The absolute slack is generous because short smoke
// runs collect ~10² samples per mix, where p99 is effectively the max and
// a single GC pause or container stall lands on it; a real queueing
// regression moves p99 by far more than one stall.
type GateOptions struct {
	P99Factor  float64 // default 2.5
	P99SlackMs float64 // default 50
	ShedSlack  float64 // default 0.15
}

func (o *GateOptions) setDefaults() {
	if o.P99Factor <= 0 {
		o.P99Factor = 2.5
	}
	if o.P99SlackMs <= 0 {
		o.P99SlackMs = 50
	}
	if o.ShedSlack <= 0 {
		o.ShedSlack = 0.15
	}
}

// Gate compares a fresh run against the committed baseline and returns one
// violation string per breached threshold (empty = pass). Every baseline
// mix must be present in the current run; per mix, the overall p99 and
// shed rate are gated, and a mix that stopped completing work at all
// (OK == 0 with baseline OK > 0) fails regardless of tolerances.
func Gate(current, baseline Suite, opts GateOptions) []string {
	opts.setDefaults()
	var violations []string
	for _, base := range baseline.Mixes {
		cur := current.Mix(base.Name)
		if cur == nil {
			violations = append(violations, fmt.Sprintf("%s: missing from current run", base.Name))
			continue
		}
		if base.Overall.OK > 0 && cur.Overall.OK == 0 {
			violations = append(violations, fmt.Sprintf("%s: no requests completed (baseline %d ok)", base.Name, base.Overall.OK))
			continue
		}
		p99Limit := base.Overall.P99ms * opts.P99Factor
		if floor := base.Overall.P99ms + opts.P99SlackMs; floor > p99Limit {
			p99Limit = floor
		}
		if cur.Overall.P99ms > p99Limit {
			violations = append(violations, fmt.Sprintf("%s: p99 %.2fms exceeds limit %.2fms (baseline %.2fms)",
				base.Name, cur.Overall.P99ms, p99Limit, base.Overall.P99ms))
		}
		if limit := base.Overall.ShedRate + opts.ShedSlack; cur.Overall.ShedRate > limit {
			violations = append(violations, fmt.Sprintf("%s: shed rate %.3f exceeds limit %.3f (baseline %.3f)",
				base.Name, cur.Overall.ShedRate, limit, base.Overall.ShedRate))
		}
	}
	return violations
}
