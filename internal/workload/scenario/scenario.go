// Package scenario runs the named workload mixes (workload.Mixes) against
// an in-process serving stack and reports percentile trajectories per
// arrival-curve phase — the serving-layer counterpart of the
// microbenchmark sweeps in BENCH_baseline.json. A mix declares the traffic
// shape; this package builds the matching environment (tenant registry,
// residency policy, attack interceptors, single server or gateway fleet),
// splits the offered curve across per-tenant streams, drives them with the
// seeded open-loop load generator, and folds client-side reports together
// with server-side metrics deltas into one structured result the
// regression gate can diff against a committed snapshot.
package scenario

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"seculator/internal/gateway"
	"seculator/internal/host"
	"seculator/internal/serve"
	"seculator/internal/serve/chaos"
	"seculator/internal/serve/client"
	"seculator/internal/serve/loadgen"
	"seculator/internal/workload"
)

// Options shapes a scenario run.
type Options struct {
	// Duration is the total wall time per mix, split across the mix's
	// arrival-curve phases (default 6s).
	Duration time.Duration
	// Seed drives every stream's arrival process and model population;
	// the same Seed replays the same suite (default 1).
	Seed int64
	// Scale multiplies every phase's offered rate — smoke runs use < 1 to
	// fit a CI container, capacity probes use > 1 (default 1).
	Scale float64
}

func (o *Options) setDefaults() {
	if o.Duration <= 0 {
		o.Duration = 6 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
}

// attackTenant is the adversarial tenant's API key/name in attack-laced
// mixes; honest tenants are wl-tenant-0 … wl-tenant-(N-1).
const attackTenant = "wl-evil"

func tenantKey(i int) string { return fmt.Sprintf("wl-tenant-%d", i) }

// serveOptions builds one replica's serving configuration for a mix:
// honest tenants without rate limits (shed pressure comes from the
// scheduler's queue bounds and the generator's concurrency cap), the
// residency policy the mix declares, and — for attack-laced mixes — an
// adversarial tenant whose session traffic runs through a fresh
// replay-MITM intercept per inference.
func serveOptions(m workload.Mix) serve.Options {
	tenants := make([]serve.TenantConfig, 0, m.Tenants+1)
	for i := 0; i < m.Tenants; i++ {
		tenants = append(tenants, serve.TenantConfig{Key: tenantKey(i)})
	}
	opts := serve.Options{
		Residency: serve.ResidencyConfig{Disabled: !m.Residency},
	}
	if m.AttackFraction > 0 {
		tenants = append(tenants, serve.TenantConfig{Key: attackTenant})
		opts.InterceptFor = func(tenant string) host.Intercept {
			if tenant == attackTenant {
				return chaos.ReplayIntercept()
			}
			return nil
		}
	}
	opts.Tenants = tenants
	return opts
}

// env is the running target: the URL clients hit, the URLs server-side
// metrics are scraped from (each replica directly — the gateway proxies
// traffic, not counters), and the teardown.
type env struct {
	base    string
	scrapes []string
	tenants []string
	stop    func()
}

func startEnv(m workload.Mix) (*env, error) {
	names := make([]string, 0, m.Tenants+1)
	for i := 0; i < m.Tenants; i++ {
		names = append(names, tenantKey(i))
	}
	if m.AttackFraction > 0 {
		names = append(names, attackTenant)
	}
	if m.Replicas > 1 {
		c, err := gateway.StartLocal(gateway.LocalOptions{
			Replicas:     m.Replicas,
			ServeOptions: func(int) serve.Options { return serveOptions(m) },
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: mix %s: starting %d-replica fleet: %w", m.Name, m.Replicas, err)
		}
		e := &env{base: c.GatewayURL, tenants: names, stop: c.Stop}
		for _, r := range c.Replicas {
			e.scrapes = append(e.scrapes, r.URL)
		}
		return e, nil
	}
	s, err := serve.New(serveOptions(m))
	if err != nil {
		return nil, fmt.Errorf("scenario: mix %s: starting server: %w", m.Name, err)
	}
	hs := httptest.NewServer(s.Handler())
	return &env{
		base:    hs.URL,
		scrapes: []string{hs.URL},
		tenants: names,
		stop: func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = s.Close(ctx)
			hs.Close()
		},
	}, nil
}

// stream is one honest traffic source: a tenant identity driving one model
// shape, session-bound or stateless.
type stream struct {
	tenant    string
	network   string
	sessions  bool
	modelSeed int64
}

// streamsFor lays the mix's model cycle over its tenants: one stream per
// max(tenants, cycle entries), tenant and model assigned round-robin, the
// first SessionRatio share session-bound. Streams sharing a cycle entry
// share a pinned model seed, so FixedModel mixes exercise the residency
// hit path across tenants the way production multi-tenant serving does.
func streamsFor(m workload.Mix) []stream {
	cycle := m.ModelCycle()
	n := m.Tenants
	if len(cycle) > n {
		n = len(cycle)
	}
	sessions := int(math.Round(m.SessionRatio * float64(n)))
	out := make([]stream, n)
	for i := range out {
		out[i] = stream{
			tenant:    tenantKey(i % m.Tenants),
			network:   cycle[i%len(cycle)],
			sessions:  i < sessions,
			modelSeed: 1000 + int64(i%len(cycle)),
		}
	}
	return out
}

// scrapeSum scrapes every replica and sums one metric across them; labels
// is a raw label substring as in chaos.MetricValueLabeled.
func scrapeSum(ctx context.Context, e *env, name, labels string) float64 {
	var sum float64
	for _, base := range e.scrapes {
		cl := client.New(base, nil)
		scrape, err := cl.Metrics(ctx)
		if err != nil {
			continue
		}
		sum += chaos.MetricValueLabeled(scrape, name, labels)
	}
	return sum
}

// serverCounters is the server-side evidence read around a phase; deltas
// between two reads attribute counter movement to that phase.
type serverCounters struct {
	shedByReason map[string]float64
	breaches     float64
	resHits      float64
	resMisses    float64
}

var shedReasons = []string{"rate", "queue", "quarantine"}

func readCounters(ctx context.Context, e *env) serverCounters {
	c := serverCounters{shedByReason: make(map[string]float64, len(shedReasons))}
	for _, reason := range shedReasons {
		for _, t := range e.tenants {
			c.shedByReason[reason] += scrapeSum(ctx, e,
				"seculator_serve_tenant_shed_total",
				fmt.Sprintf("tenant=%q,reason=%q", t, reason))
		}
	}
	for _, t := range e.tenants {
		c.breaches += scrapeSum(ctx, e, "seculator_serve_tenant_breaches_total", fmt.Sprintf("tenant=%q", t))
	}
	c.resHits = scrapeSum(ctx, e, "seculator_serve_residency_hits_total", "")
	c.resMisses = scrapeSum(ctx, e, "seculator_serve_residency_misses_total", "")
	return c
}

func (c serverCounters) delta(before serverCounters) serverCounters {
	d := serverCounters{shedByReason: make(map[string]float64, len(c.shedByReason))}
	for r, v := range c.shedByReason {
		d.shedByReason[r] = v - before.shedByReason[r]
	}
	d.breaches = c.breaches - before.breaches
	d.resHits = c.resHits - before.resHits
	d.resMisses = c.resMisses - before.resMisses
	return d
}

// phaseRun is one phase's raw outcome before serialization: the merged
// honest report plus retained samples for suite-level percentiles.
type phaseRun struct {
	result  PhaseResult
	samples []time.Duration
	attack  loadgen.Report
}

// runPhase offers one constant-rate slice of the mix: every honest stream
// plus (for attack-laced mixes) the adversarial stream run concurrently
// for the phase duration, then client reports and server counter deltas
// fold into one PhaseResult.
func runPhase(ctx context.Context, e *env, m workload.Mix, ph workload.MixPhase, phaseIdx int, d time.Duration, opts Options) (phaseRun, error) {
	streams := streamsFor(m)
	honestRPS := ph.RPS * opts.Scale * (1 - m.AttackFraction)
	perStream := honestRPS / float64(len(streams))

	before := readCounters(ctx, e)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		reports = make([]loadgen.Report, len(streams))
		firstE  error
		attack  loadgen.Report
	)
	for i, st := range streams {
		wg.Add(1)
		go func(i int, st stream) {
			defer wg.Done()
			cl := client.New(e.base, nil)
			cl.SetAPIKey(st.tenant)
			lopts := loadgen.Options{
				RPS:         perStream,
				Duration:    d,
				Network:     st.network,
				Sessions:    st.sessions,
				FixedModel:  m.FixedModel,
				ModelSeed:   st.modelSeed,
				Poisson:     m.Arrival.Poisson,
				KeepSamples: true,
				// Distinct per (suite seed, mix, phase, stream) and stable
				// across runs: the whole suite replays from Options.Seed.
				Seed: opts.Seed*1_000_000 + int64(phaseIdx)*1_000 + int64(i) + 1,
			}
			if st.sessions {
				lopts.SessionEvery = m.SessionEvery
			}
			rep, err := loadgen.Run(ctx, cl, lopts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstE == nil {
				firstE = fmt.Errorf("scenario: mix %s phase %s stream %d: %w", m.Name, ph.Name, i, err)
			}
			reports[i] = rep
		}(i, st)
	}
	if m.AttackFraction > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := client.New(e.base, nil)
			cl.SetAPIKey(attackTenant)
			rep := chaos.AttackStream(ctx, cl, m.Models[0].Network,
				ph.RPS*opts.Scale*m.AttackFraction, d, opts.Seed*1_000_000+int64(phaseIdx)*1_000)
			mu.Lock()
			attack = rep
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstE != nil {
		return phaseRun{}, firstE
	}

	delta := readCounters(ctx, e).delta(before)

	pr := phaseRun{attack: attack}
	res := PhaseResult{
		Name:         ph.Name,
		TargetRPS:    ph.RPS * opts.Scale,
		DurationMs:   durMs(d),
		Errors:       make(map[string]int),
		ShedByReason: make(map[string]int),
		ByReplica:    make(map[string]int),
	}
	for _, rep := range reports {
		res.Sent += rep.Sent
		res.OK += rep.OK
		res.Shed += rep.Shed
		res.SessionsOpened += rep.SessionsOpened
		res.ResidencyHits += rep.ResidencyHits
		for cls, n := range rep.Errors {
			res.Errors[cls] += n
		}
		for name, rs := range rep.ByReplica {
			res.ByReplica[name] += rs.OK
		}
		pr.samples = append(pr.samples, rep.Samples...)
	}
	sort.Slice(pr.samples, func(i, j int) bool { return pr.samples[i] < pr.samples[j] })
	res.P50ms = durMs(loadgen.Percentile(pr.samples, 0.50))
	res.P95ms = durMs(loadgen.Percentile(pr.samples, 0.95))
	res.P99ms = durMs(loadgen.Percentile(pr.samples, 0.99))
	if n := len(pr.samples); n > 0 {
		res.MaxMs = durMs(pr.samples[n-1])
	}
	if d > 0 {
		res.AchievedRPS = round2(float64(res.OK) / d.Seconds())
	}
	res.ShedRate = shedRate(res.Sent, res.Shed, res.Errors)
	for r, v := range delta.shedByReason {
		if v > 0 {
			res.ShedByReason[r] = int(v)
		}
	}
	res.Breaches = int(delta.breaches)
	if hm := delta.resHits + delta.resMisses; hm > 0 {
		res.ResidencyHitRate = round4(delta.resHits / hm)
	}
	if len(res.ByReplica) == 0 {
		res.ByReplica = nil
	}
	pr.result = res
	return pr, nil
}

// shedRate is the refused share of offered honest load: generator-side
// concurrency shed plus the server refusal classes, over everything sent.
func shedRate(sent, shed int, errs map[string]int) float64 {
	if sent == 0 {
		return 0
	}
	refused := shed
	for _, cls := range []string{serve.ClassQueueFull, serve.ClassRateLimited, serve.ClassQuarantined} {
		refused += errs[cls]
	}
	return round4(float64(refused) / float64(sent))
}

// Run drives one mix through its full arrival curve and returns the
// per-phase trajectory plus the folded overall result.
func Run(ctx context.Context, m workload.Mix, opts Options) (MixResult, error) {
	opts.setDefaults()
	if err := m.Validate(); err != nil {
		return MixResult{}, err
	}
	e, err := startEnv(m)
	if err != nil {
		return MixResult{}, err
	}
	defer e.stop()

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	phases := m.Arrival.Phases()
	durations := m.PhaseDurations(opts.Duration)
	out := MixResult{Name: m.Name, Title: m.Title, Replicas: m.Replicas}
	var allSamples []time.Duration
	overall := PhaseResult{
		Name:         "overall",
		Errors:       make(map[string]int),
		ShedByReason: make(map[string]int),
		ByReplica:    make(map[string]int),
	}
	var attackTotal loadgen.Report
	attackTotal.Errors = make(map[string]int)
	for i, ph := range phases {
		pr, err := runPhase(ctx, e, m, ph, i, durations[i], opts)
		if err != nil {
			return MixResult{}, err
		}
		out.Phases = append(out.Phases, pr.result)
		allSamples = append(allSamples, pr.samples...)
		mergePhase(&overall, pr.result)
		attackTotal.Sent += pr.attack.Sent
		attackTotal.OK += pr.attack.OK
		for cls, n := range pr.attack.Errors {
			attackTotal.Errors[cls] += n
		}
	}

	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	out.ElapsedMs = durMs(time.Since(start))

	sort.Slice(allSamples, func(i, j int) bool { return allSamples[i] < allSamples[j] })
	overall.P50ms = durMs(loadgen.Percentile(allSamples, 0.50))
	overall.P95ms = durMs(loadgen.Percentile(allSamples, 0.95))
	overall.P99ms = durMs(loadgen.Percentile(allSamples, 0.99))
	if n := len(allSamples); n > 0 {
		overall.MaxMs = durMs(allSamples[n-1])
	}
	if sec := opts.Duration.Seconds(); sec > 0 {
		overall.AchievedRPS = round2(float64(overall.OK) / sec)
	}
	overall.ShedRate = shedRate(overall.Sent, overall.Shed, overall.Errors)
	overall.ResidencyHitRate = foldHitRate(out.Phases)
	if len(overall.ByReplica) == 0 {
		overall.ByReplica = nil
	}
	out.Overall = overall

	if m.AttackFraction > 0 {
		out.Attack = &AttackResult{
			Sent: attackTotal.Sent,
			Breached: attackTotal.Errors[serve.ClassFreshness] +
				attackTotal.Errors[serve.ClassChannel] +
				attackTotal.Errors[serve.ClassIntegrity],
			Quarantined: attackTotal.Errors[serve.ClassQuarantined],
			RateLimited: attackTotal.Errors[serve.ClassRateLimited],
		}
	}
	if overall.Sent > 0 {
		out.GC = GCSummary{
			AllocsPer1k: round2(float64(msAfter.Mallocs-msBefore.Mallocs) * 1000 / float64(overall.Sent)),
			KiBPer1k:    round2(float64(msAfter.TotalAlloc-msBefore.TotalAlloc) * 1000 / float64(overall.Sent) / 1024),
			Cycles:      msAfter.NumGC - msBefore.NumGC,
		}
	}
	return out, nil
}

// mergePhase folds one phase's counters into the overall accumulator
// (percentiles are recomputed from merged samples by the caller).
func mergePhase(overall *PhaseResult, ph PhaseResult) {
	overall.Sent += ph.Sent
	overall.OK += ph.OK
	overall.Shed += ph.Shed
	overall.SessionsOpened += ph.SessionsOpened
	overall.ResidencyHits += ph.ResidencyHits
	overall.Breaches += ph.Breaches
	overall.DurationMs += ph.DurationMs
	for cls, n := range ph.Errors {
		overall.Errors[cls] += n
	}
	for r, n := range ph.ShedByReason {
		overall.ShedByReason[r] += n
	}
	for name, n := range ph.ByReplica {
		overall.ByReplica[name] += n
	}
}

// foldHitRate recomputes the residency hit rate across phases from their
// rates and volumes (each phase stores a rate, not raw counts).
func foldHitRate(phases []PhaseResult) float64 {
	var hits, total float64
	for _, ph := range phases {
		if ph.ResidencyHitRate > 0 {
			// Approximate counts back out of the per-phase rate over its OK
			// volume; exact enough for the gate's coarse thresholds.
			hits += ph.ResidencyHitRate * float64(ph.OK)
			total += float64(ph.OK)
		} else if ph.OK > 0 {
			total += float64(ph.OK)
		}
	}
	if total == 0 {
		return 0
	}
	return round4(hits / total)
}

// RunAll runs every mix in order and assembles the suite result.
func RunAll(ctx context.Context, mixes []workload.Mix, opts Options) (Suite, error) {
	opts.setDefaults()
	s := Suite{
		Schema:     1,
		Suite:      "workloads",
		Seed:       opts.Seed,
		Scale:      opts.Scale,
		DurationMs: durMs(opts.Duration),
	}
	for _, m := range mixes {
		res, err := Run(ctx, m, opts)
		if err != nil {
			return Suite{}, err
		}
		s.Mixes = append(s.Mixes, res)
	}
	return s, nil
}

func durMs(d time.Duration) float64 { return round4(float64(d) / float64(time.Millisecond)) }
func round2(v float64) float64      { return math.Round(v*100) / 100 }
func round4(v float64) float64      { return math.Round(v*10000) / 10000 }
