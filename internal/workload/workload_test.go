package workload

import (
	"math"
	"testing"
)

func TestAllNetworksValidate(t *testing.T) {
	nets := All()
	if len(nets) != 5 {
		t.Fatalf("All returned %d networks, want 5", len(nets))
	}
	for _, n := range nets {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

// Parameter counts must match Table 1 within 10%.
func TestParameterCountsMatchPaper(t *testing.T) {
	want := map[string]float64{
		"MobileNet": 4.2e6,
		"ResNet18":  11e6,
		"AlexNet":   62e6,
		"VGG16":     138e6,
		"VGG19":     143e6,
	}
	for _, n := range All() {
		target, ok := want[n.Name]
		if !ok {
			t.Fatalf("unexpected network %q", n.Name)
		}
		got := float64(n.Params())
		if rel := math.Abs(got-target) / target; rel > 0.10 {
			t.Errorf("%s params = %.2fM, paper says %.1fM (off by %.1f%%)",
				n.Name, got/1e6, target/1e6, rel*100)
		}
	}
}

func TestLayerGeometry(t *testing.T) {
	// Same padding.
	l := Layer{Type: Conv, C: 3, H: 224, W: 224, K: 64, R: 3, S: 3, Stride: 2}
	if l.OutH() != 112 || l.OutW() != 112 {
		t.Fatalf("same-pad out = %dx%d", l.OutH(), l.OutW())
	}
	// Valid padding.
	l = Layer{Type: Conv, C: 3, H: 227, W: 227, K: 96, R: 11, S: 11, Stride: 4, Valid: true}
	if l.OutH() != 55 {
		t.Fatalf("valid-pad out = %d, want 55", l.OutH())
	}
}

func TestLayerParamsAndMACs(t *testing.T) {
	l := Layer{Type: Conv, C: 16, H: 8, W: 8, K: 32, R: 3, S: 3, Stride: 1}
	if l.Params() != 16*32*9+32 {
		t.Fatalf("conv params = %d", l.Params())
	}
	if l.MACs() != 8*8*32*16*9 {
		t.Fatalf("conv MACs = %d", l.MACs())
	}
	dw := Layer{Type: Depthwise, C: 16, H: 8, W: 8, K: 16, R: 3, S: 3, Stride: 1}
	if dw.Params() != 16*9+16 {
		t.Fatalf("dw params = %d", dw.Params())
	}
	if dw.MACs() != 8*8*16*9 {
		t.Fatalf("dw MACs = %d", dw.MACs())
	}
	if dw.ReductionChannels() != 1 {
		t.Fatal("depthwise reduction must be 1 channel")
	}
	p := Layer{Type: Pool, C: 4, H: 8, W: 8, K: 4, R: 2, S: 2, Stride: 2, Valid: true}
	if p.Params() != 0 {
		t.Fatal("pool has no params")
	}
	if l.ReductionChannels() != 16 {
		t.Fatal("conv reduction channels wrong")
	}
}

func TestLayerValidate(t *testing.T) {
	bad := Layer{Type: Conv, C: 0, H: 1, W: 1, K: 1, R: 1, S: 1, Stride: 1}
	if bad.Validate() == nil {
		t.Fatal("zero-channel layer accepted")
	}
	dw := Layer{Type: Depthwise, C: 8, H: 4, W: 4, K: 16, R: 3, S: 3, Stride: 1}
	if dw.Validate() == nil {
		t.Fatal("depthwise with K != C accepted")
	}
}

func TestNetworkValidateChaining(t *testing.T) {
	n := Network{Name: "broken", Layers: []Layer{
		{Name: "a", Type: Conv, C: 3, H: 8, W: 8, K: 16, R: 3, S: 3, Stride: 1},
		{Name: "b", Type: Conv, C: 99, H: 8, W: 8, K: 16, R: 3, S: 3, Stride: 1},
	}}
	if n.Validate() == nil {
		t.Fatal("channel mismatch accepted")
	}
	n.Layers[1].C = 16
	n.Layers[1].H = 5
	if n.Validate() == nil {
		t.Fatal("spatial mismatch accepted")
	}
	if (Network{Name: "empty"}).Validate() == nil {
		t.Fatal("empty network accepted")
	}
}

func TestByName(t *testing.T) {
	n, err := ByName("VGG16")
	if err != nil || n.Name != "VGG16" {
		t.Fatalf("ByName(VGG16) = %v, %v", n.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestLayerTypeString(t *testing.T) {
	for _, lt := range []LayerType{Conv, Depthwise, Pointwise, FC, Pool} {
		if lt.String() == "" {
			t.Fatalf("empty string for type %d", lt)
		}
	}
}

func TestNetworkMACsPositive(t *testing.T) {
	for _, n := range All() {
		if n.MACs() <= 0 {
			t.Errorf("%s MACs = %d", n.Name, n.MACs())
		}
	}
	// VGG16 is famously ~15.5 GMACs.
	v := VGG16()
	g := float64(v.MACs()) / 1e9
	if g < 13 || g > 18 {
		t.Errorf("VGG16 GMACs = %.1f, expected ~15.5", g)
	}
}

func TestResNetStemPoolPadded(t *testing.T) {
	n := ResNet18()
	var pool1 Layer
	for _, l := range n.Layers {
		if l.Name == "pool1" {
			pool1 = l
		}
	}
	if pool1.OutH() != 56 {
		t.Fatalf("ResNet stem pool out = %d, want 56", pool1.OutH())
	}
}

func TestShrinkBenchmarks(t *testing.T) {
	for _, n := range All() {
		s, err := Shrink(n, 8)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if len(s.Layers) != len(n.Layers) {
			t.Fatalf("%s: shrink changed the topology", n.Name)
		}
		if s.Params() >= n.Params() {
			t.Fatalf("%s: shrink did not reduce parameters", n.Name)
		}
		for i, l := range s.Layers {
			if l.Type != n.Layers[i].Type {
				t.Fatalf("%s layer %d: type changed", n.Name, i)
			}
		}
	}
	if _, err := Shrink(MobileNet(), 0); err == nil {
		t.Fatal("zero divisor accepted")
	}
	// Identity shrink keeps everything valid.
	if _, err := Shrink(ResNet18(), 1); err != nil {
		t.Fatal(err)
	}
}
