// Package workload defines the benchmark networks of Table 1 — MobileNet,
// ResNet-18, AlexNet, VGG16 and VGG19 — as per-layer shape descriptions the
// simulator executes. Parameter counts match the paper's table (4.2 M,
// 11 M, 62 M, 138 M, 143 M); layer counts follow the canonical
// architectures (the paper's "Layers" column groups some sublayers
// differently, which we note per network).
package workload

import "fmt"

// LayerType classifies a layer for mapping and timing purposes.
type LayerType uint8

const (
	// Conv is a standard convolution.
	Conv LayerType = iota
	// Depthwise is a depthwise convolution (one filter per channel).
	Depthwise
	// Pointwise is a 1x1 convolution.
	Pointwise
	// FC is a fully connected layer (conv with 1x1 spatial extent).
	FC
	// Pool is max/average pooling (Style-1 pre-processing pattern).
	Pool
	// Upsample is zero-insertion upsampling by the Stride factor — the
	// input pre-processing that turns deconvolution (GAN generators,
	// Section 5.2) into ordinary convolution.
	Upsample
)

// String implements fmt.Stringer.
func (t LayerType) String() string {
	switch t {
	case Conv:
		return "conv"
	case Depthwise:
		return "dwconv"
	case Pointwise:
		return "pwconv"
	case FC:
		return "fc"
	case Pool:
		return "pool"
	case Upsample:
		return "upsample"
	default:
		return fmt.Sprintf("LayerType(%d)", uint8(t))
	}
}

// Layer is one network layer: input fmaps of C channels at H x W, K output
// channels, R x S kernels applied with the given stride. Padding is "same"
// (output spatial extent = input/stride, rounded up).
type Layer struct {
	Name   string
	Type   LayerType
	C      int // input channels
	H, W   int // input spatial extent
	K      int // output channels
	R, S   int // kernel extent
	Stride int
	Valid  bool // true: valid padding ((H-R)/stride+1); false: "same" (ceil(H/stride))
}

// OutH returns the output rows.
func (l Layer) OutH() int {
	if l.Type == Upsample {
		return l.H * l.Stride
	}
	if l.Valid {
		return (l.H-l.R)/l.Stride + 1
	}
	return ceilDiv(l.H, l.Stride)
}

// OutW returns the output columns.
func (l Layer) OutW() int {
	if l.Type == Upsample {
		return l.W * l.Stride
	}
	if l.Valid {
		return (l.W-l.S)/l.Stride + 1
	}
	return ceilDiv(l.W, l.Stride)
}

// Params returns the number of trainable parameters (weights + biases).
func (l Layer) Params() int64 {
	switch l.Type {
	case Depthwise:
		return int64(l.C)*int64(l.R)*int64(l.S) + int64(l.C)
	case Pool, Upsample:
		return 0
	default:
		return int64(l.K)*int64(l.C)*int64(l.R)*int64(l.S) + int64(l.K)
	}
}

// MACs returns the multiply-accumulate count of one inference pass.
func (l Layer) MACs() int64 {
	out := int64(l.OutH()) * int64(l.OutW())
	switch l.Type {
	case Depthwise:
		return out * int64(l.C) * int64(l.R) * int64(l.S)
	case Pool:
		return out * int64(l.C) * int64(l.R) * int64(l.S) // comparisons/adds
	case Upsample:
		return out * int64(l.C) // zero-insertion copies
	default:
		return out * int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
	}
}

// ReductionChannels returns the channel depth reduced per output element:
// depthwise layers and pools reduce within a single channel.
func (l Layer) ReductionChannels() int {
	if l.PerChannel() {
		return 1
	}
	return l.C
}

// PerChannel reports whether each output channel depends only on its own
// input channel (depthwise, pooling, upsampling).
func (l Layer) PerChannel() bool {
	return l.Type == Depthwise || l.Type == Pool || l.Type == Upsample
}

// Validate checks the layer's dimensions.
func (l Layer) Validate() error {
	if l.C <= 0 || l.H <= 0 || l.W <= 0 || l.K <= 0 || l.R <= 0 || l.S <= 0 || l.Stride <= 0 {
		return fmt.Errorf("workload: layer %q has non-positive dimension: %+v", l.Name, l)
	}
	if (l.Type == Depthwise || l.Type == Upsample) && l.K != l.C {
		return fmt.Errorf("workload: %s layer %q must have K == C", l.Type, l.Name)
	}
	return nil
}

// Network is an ordered list of layers.
type Network struct {
	Name   string
	Note   string // how the paper's "Layers" count relates to ours
	Layers []Layer
}

// Params sums trainable parameters.
func (n Network) Params() int64 {
	var p int64
	for _, l := range n.Layers {
		p += l.Params()
	}
	return p
}

// MACs sums the MAC count of one inference pass.
func (n Network) MACs() int64 {
	var m int64
	for _, l := range n.Layers {
		m += l.MACs()
	}
	return m
}

// Validate checks every layer and the inter-layer shape chaining.
func (n Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("workload: network %q has no layers", n.Name)
	}
	for i, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return err
		}
		if i == 0 {
			continue
		}
		prev := n.Layers[i-1]
		if l.Type == FC && l.H == 1 && l.W == 1 {
			// FC layers consume the flattened activation volume.
			if want := prev.K * prev.OutH() * prev.OutW(); l.C != want {
				return fmt.Errorf("workload: %s layer %d (%s): flattened input %d != previous volume %d",
					n.Name, i, l.Name, l.C, want)
			}
			continue
		}
		if l.C != prev.K {
			return fmt.Errorf("workload: %s layer %d (%s): input channels %d != previous output %d",
				n.Name, i, l.Name, l.C, prev.K)
		}
		if l.H != prev.OutH() || l.W != prev.OutW() {
			return fmt.Errorf("workload: %s layer %d (%s): input %dx%d != previous output %dx%d",
				n.Name, i, l.Name, l.H, l.W, prev.OutH(), prev.OutW())
		}
	}
	return nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// conv is a shorthand constructor used by the network builders.
func conv(name string, c, h, w, k, r, stride int) Layer {
	return Layer{Name: name, Type: Conv, C: c, H: h, W: w, K: k, R: r, S: r, Stride: stride}
}

func pool(name string, c, h, w, r, stride int) Layer {
	return Layer{Name: name, Type: Pool, C: c, H: h, W: w, K: c, R: r, S: r, Stride: stride, Valid: true}
}

func fc(name string, c, k int) Layer {
	return Layer{Name: name, Type: FC, C: c, H: 1, W: 1, K: k, R: 1, S: 1, Stride: 1}
}

// AlexNet returns the 13-layer AlexNet of the paper (5 conv + 3 pool +
// 3 FC, with the two grouped conv layers modeled ungrouped + the input
// pipeline), ~62 M parameters.
func AlexNet() Network {
	ls := []Layer{
		{Name: "conv1", Type: Conv, C: 3, H: 227, W: 227, K: 96, R: 11, S: 11, Stride: 4, Valid: true},
		pool("pool1", 96, 55, 55, 3, 2),
		conv("conv2", 96, 27, 27, 256, 5, 1),
		pool("pool2", 256, 27, 27, 3, 2),
		conv("conv3", 256, 13, 13, 384, 3, 1),
		conv("conv4", 384, 13, 13, 384, 3, 1),
		conv("conv5", 384, 13, 13, 256, 3, 1),
		pool("pool5", 256, 13, 13, 3, 2),
		fc("fc6", 6*6*256, 4096), // consumes the flattened 6x6x256 volume
		fc("fc7", 4096, 4096),
		fc("fc8", 4096, 1000),
	}
	return Network{
		Name:   "AlexNet",
		Note:   "paper counts 13 layers incl. the two response-norm layers; we model the 11 compute layers",
		Layers: ls,
	}
}

// vggBlock appends n same-size conv layers followed by a 2x2 pool.
func vggBlock(ls []Layer, idx *int, c, h, w, k, n int) ([]Layer, int, int, int) {
	in := c
	for i := 0; i < n; i++ {
		*idx++
		ls = append(ls, conv(fmt.Sprintf("conv%d", *idx), in, h, w, k, 3, 1))
		in = k
	}
	ls = append(ls, pool(fmt.Sprintf("pool%d", *idx), k, h, w, 2, 2))
	return ls, k, h / 2, w / 2
}

func vgg(name string, convsPerBlock [5]int, note string) Network {
	var ls []Layer
	idx := 0
	c, h, w := 3, 224, 224
	ks := [5]int{64, 128, 256, 512, 512}
	for b := 0; b < 5; b++ {
		ls, c, h, w = vggBlock(ls, &idx, c, h, w, ks[b], convsPerBlock[b])
	}
	ls = append(ls,
		Layer{Name: "fc1", Type: FC, C: 512, H: 7, W: 7, K: 4096, R: 7, S: 7, Stride: 7},
		fc("fc2", 4096, 4096),
		fc("fc3", 4096, 1000),
	)
	return Network{Name: name, Note: note, Layers: ls}
}

// VGG16 returns VGG-16 (13 conv + 3 FC + 5 pools), ~138 M parameters.
func VGG16() Network {
	return vgg("VGG16", [5]int{2, 2, 3, 3, 3},
		"paper counts 24 layers (16 weight layers + pools/softmax); we model 21 compute layers")
}

// VGG19 returns VGG-19 (16 conv + 3 FC + 5 pools), ~143 M parameters.
func VGG19() Network {
	return vgg("VGG19", [5]int{2, 2, 4, 4, 4},
		"paper counts the 19 weight layers; pools included here as compute layers")
}

// ResNet18 returns ResNet-18 (a 7x7 stem + 16 3x3 convs + FC), ~11 M
// parameters. Shortcut additions are elementwise and folded into the conv
// layers; the three 1x1 downsample projections are included.
func ResNet18() Network {
	ls := []Layer{
		conv("conv1", 3, 224, 224, 64, 7, 2),
		// Padded 3x3/2 max pool (the canonical ResNet stem): 112 -> 56.
		{Name: "pool1", Type: Pool, C: 64, H: 112, W: 112, K: 64, R: 3, S: 3, Stride: 2},
	}
	stage := func(idx, c, h, k, stride int) []Layer {
		var out []Layer
		out = append(out, conv(fmt.Sprintf("conv%d_1", idx), c, h, h, k, 3, stride))
		oh := ceilDiv(h, stride)
		out = append(out,
			conv(fmt.Sprintf("conv%d_2", idx), k, oh, oh, k, 3, 1),
			conv(fmt.Sprintf("conv%d_3", idx), k, oh, oh, k, 3, 1),
			conv(fmt.Sprintf("conv%d_4", idx), k, oh, oh, k, 3, 1),
		)
		return out
	}
	ls = append(ls, stage(2, 64, 56, 64, 1)...)
	ls = append(ls, stage(3, 64, 56, 128, 2)...)
	ls = append(ls, stage(4, 128, 28, 256, 2)...)
	ls = append(ls, stage(5, 256, 14, 512, 2)...)
	ls = append(ls,
		pool("avgpool", 512, 7, 7, 7, 7),
		fc("fc", 512, 1000),
	)
	return Network{
		Name:   "ResNet18",
		Note:   "18 weight layers; 1x1 shortcut projections folded into stage entry convs",
		Layers: ls,
	}
}

// MobileNet returns MobileNet-V1 (1.0, 224): a stem conv, 13 depthwise-
// separable pairs, pooling and the classifier — ~4.2 M parameters. The
// paper counts 23 layers (stem + 13 separable blocks + pool + FC counted
// per block plus auxiliaries); we enumerate all 28 compute layers.
func MobileNet() Network {
	var ls []Layer
	c, h := 3, 224
	ls = append(ls, conv("conv1", c, h, h, 32, 3, 2))
	c, h = 32, 112
	sep := func(idx, k, stride int) {
		ls = append(ls, Layer{
			Name: fmt.Sprintf("dw%d", idx), Type: Depthwise,
			C: c, H: h, W: h, K: c, R: 3, S: 3, Stride: stride,
		})
		h = ceilDiv(h, stride)
		ls = append(ls, Layer{
			Name: fmt.Sprintf("pw%d", idx), Type: Pointwise,
			C: c, H: h, W: h, K: k, R: 1, S: 1, Stride: 1,
		})
		c = k
	}
	sep(2, 64, 1)
	sep(3, 128, 2)
	sep(4, 128, 1)
	sep(5, 256, 2)
	sep(6, 256, 1)
	sep(7, 512, 2)
	for i := 8; i <= 12; i++ {
		sep(i, 512, 1)
	}
	sep(13, 1024, 2)
	sep(14, 1024, 1)
	ls = append(ls,
		pool("avgpool", 1024, 7, 7, 7, 7),
		fc("fc", 1024, 1000),
	)
	return Network{
		Name:   "MobileNet",
		Note:   "MobileNet-V1 1.0/224; paper's 23-layer count groups the separable pairs",
		Layers: ls,
	}
}

// All returns the five benchmark networks in the paper's order.
func All() []Network {
	return []Network{MobileNet(), ResNet18(), AlexNet(), VGG16(), VGG19()}
}

// ByName returns the named network (case-sensitive) or an error. Besides
// the five CNN benchmarks, the transformer configurations "BERT-base" and
// "TinyTransformer" are accepted.
func ByName(name string) (Network, error) {
	for _, n := range All() {
		if n.Name == name {
			return n, nil
		}
	}
	switch name {
	case BERTBase().Name:
		return Transformer(BERTBase())
	case TinyTransformer().Name:
		return Transformer(TinyTransformer())
	}
	return Network{}, fmt.Errorf("workload: unknown network %q", name)
}

// Shrink scales a network down by div in both spatial extent and channel
// width (with floors so every layer stays valid), rebuilding the
// inter-layer chaining. It preserves the topology — layer types, kernels,
// strides, padding — so a full benchmark architecture can be validated
// functionally at tractable size.
func Shrink(n Network, div int) (Network, error) {
	if div < 1 {
		return Network{}, fmt.Errorf("workload: shrink divisor %d must be >= 1", div)
	}
	shrinkDim := func(v, floor int) int {
		s := v / div
		if s < floor {
			s = floor
		}
		return s
	}
	out := Network{Name: fmt.Sprintf("%s/%d", n.Name, div), Note: n.Note}
	h, w, c := 0, 0, 0
	for i, l := range n.Layers {
		sl := l
		if i == 0 {
			sl.H = shrinkDim(l.H, l.R)
			sl.W = shrinkDim(l.W, l.S)
			sl.C = shrinkDim(l.C, 1)
		} else if l.Type == FC && l.H == 1 && l.W == 1 {
			prev := out.Layers[i-1]
			sl.C = prev.K * prev.OutH() * prev.OutW()
		} else {
			sl.H, sl.W, sl.C = h, w, c
		}
		if sl.Type == FC && sl.H == 1 {
			sl.K = shrinkDim(l.K, 1)
		} else {
			switch sl.Type {
			case Depthwise, Pool, Upsample:
				sl.K = sl.C
			default:
				sl.K = shrinkDim(l.K, 1)
			}
		}
		// Keep kernels within the shrunken extent for valid padding.
		if sl.Valid && (sl.R > sl.H || sl.S > sl.W) {
			sl.R, sl.S = sl.H, sl.W
		}
		if err := sl.Validate(); err != nil {
			return Network{}, fmt.Errorf("workload: shrink: layer %d: %w", i, err)
		}
		h, w, c = sl.OutH(), sl.OutW(), sl.K
		out.Layers = append(out.Layers, sl)
	}
	if err := out.Validate(); err != nil {
		return Network{}, fmt.Errorf("workload: shrink produced an invalid network: %w", err)
	}
	return out, nil
}
