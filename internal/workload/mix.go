// mix.go — the named serving-workload registry. The paper's evaluation
// sweeps a fixed benchmark grid; the serving tier's knobs (scheduler
// linger/MaxBatch, residency, quarantine, gateway spread) win or lose
// depending entirely on traffic *shape*. A Mix pins one shape down
// declaratively — model distribution, session behaviour, tenancy, arrival
// curve, attack fraction, residency policy — so the scenario runner can
// replay it, emit percentile trajectories, and gate regressions per mix
// (modeled on the T1–T5 OLTP/OLAP benchmark matrices).
package workload

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ModelShare weights one network in a mix's model-shape distribution.
// Streams are assigned networks round-robin over the weight-expanded list,
// so a {Mini:2, ResNet18/16:1} mix offers two Mini streams per ResNet one.
type ModelShare struct {
	Network string `json:"network"`
	Weight  int    `json:"weight"`
}

// ArrivalKind names the offered-rate curve family of a mix.
type ArrivalKind string

// The arrival curve families.
const (
	// ArrivalConstant offers one flat rate for the whole run.
	ArrivalConstant ArrivalKind = "constant"
	// ArrivalRamp steps the rate from RPS up to PeakRPS in Steps equal
	// phases — the warming-traffic shape that exposes cold caches.
	ArrivalRamp ArrivalKind = "ramp"
	// ArrivalBurst alternates RPS and PeakRPS square-wave style for Steps
	// periods — the bursty shape that exposes shed behaviour and batch
	// formation under pressure.
	ArrivalBurst ArrivalKind = "burst"
)

// ArrivalCurve is a mix's open-loop offered-rate trajectory. Each expanded
// phase runs at one constant target rate; Poisson controls whether arrivals
// inside a phase space uniformly or memorylessly.
type ArrivalCurve struct {
	Kind    ArrivalKind `json:"kind"`
	RPS     float64     `json:"rps"`                // base (low) rate
	PeakRPS float64     `json:"peak_rps,omitempty"` // ramp end / burst high
	Steps   int         `json:"steps,omitempty"`    // ramp steps or burst periods (default 3)
	Poisson bool        `json:"poisson,omitempty"`  // exponential inter-arrivals
}

// MixPhase is one constant-rate slice of an expanded arrival curve.
type MixPhase struct {
	Name string  `json:"name"`
	RPS  float64 `json:"rps"`
	Frac float64 `json:"frac"` // fraction of the run duration
}

// Phases expands the curve into its constant-rate slices; the fractions
// always sum to 1 so a runner splits any total duration exactly.
func (c ArrivalCurve) Phases() []MixPhase {
	steps := c.Steps
	if steps <= 0 {
		steps = 3
	}
	switch c.Kind {
	case ArrivalRamp:
		out := make([]MixPhase, 0, steps)
		for i := 0; i < steps; i++ {
			rps := c.RPS
			if steps > 1 {
				rps += (c.PeakRPS - c.RPS) * float64(i) / float64(steps-1)
			}
			out = append(out, MixPhase{
				Name: fmt.Sprintf("ramp-%d", i+1),
				RPS:  rps,
				Frac: 1 / float64(steps),
			})
		}
		return out
	case ArrivalBurst:
		out := make([]MixPhase, 0, 2*steps)
		for i := 0; i < steps; i++ {
			out = append(out,
				MixPhase{Name: fmt.Sprintf("calm-%d", i+1), RPS: c.RPS, Frac: 1 / float64(2*steps)},
				MixPhase{Name: fmt.Sprintf("burst-%d", i+1), RPS: c.PeakRPS, Frac: 1 / float64(2*steps)},
			)
		}
		return out
	default:
		return []MixPhase{{Name: "steady", RPS: c.RPS, Frac: 1}}
	}
}

// Validate checks the curve is runnable.
func (c ArrivalCurve) Validate() error {
	if c.RPS <= 0 {
		return fmt.Errorf("workload: arrival curve needs RPS > 0, got %v", c.RPS)
	}
	switch c.Kind {
	case ArrivalConstant:
	case ArrivalRamp, ArrivalBurst:
		if c.PeakRPS < c.RPS {
			return fmt.Errorf("workload: %s curve needs PeakRPS >= RPS (%v < %v)", c.Kind, c.PeakRPS, c.RPS)
		}
	default:
		return fmt.Errorf("workload: unknown arrival kind %q", c.Kind)
	}
	if f := sumFrac(c.Phases()); f < 0.999 || f > 1.001 {
		return fmt.Errorf("workload: %s curve phases cover %v of the run, want 1", c.Kind, f)
	}
	return nil
}

func sumFrac(ps []MixPhase) float64 {
	var f float64
	for _, p := range ps {
		f += p.Frac
	}
	return f
}

// Mix is one named serving workload: everything the scenario runner needs
// to reproduce a traffic shape against the serving stack.
type Mix struct {
	// Name is the registry key ("W1"…); Title and Description are for the
	// report.
	Name        string `json:"name"`
	Title       string `json:"title"`
	Description string `json:"description"`

	// Models is the model-shape distribution offered (registry names,
	// including "Name/div" shrink forms and "Mini").
	Models []ModelShare `json:"models"`
	// Tenants is the honest-tenant count; offered load splits evenly
	// across them.
	Tenants int `json:"tenants"`
	// SessionRatio is the fraction of honest tenant streams bound to
	// secure sessions (the command channel joins the measured path).
	SessionRatio float64 `json:"session_ratio"`
	// SessionEvery, for session streams, rotates to a fresh session every
	// N arrivals — the churn-heavy shape. Zero holds one session per
	// stream per phase.
	SessionEvery int `json:"session_every,omitempty"`
	// AttackFraction is the fraction of total offered load that is
	// attack-laced: a dedicated adversarial tenant drives replay-MITM
	// traffic at that share of the curve's rate.
	AttackFraction float64 `json:"attack_fraction,omitempty"`
	// Arrival is the offered-rate trajectory.
	Arrival ArrivalCurve `json:"arrival"`
	// Residency enables the verified-weight residency cache on the server
	// under test; FixedModel pins every honest request to one model seed
	// (the hit-path serving shape) instead of a model per request (the
	// residency-hostile shape).
	Residency  bool `json:"residency"`
	FixedModel bool `json:"fixed_model,omitempty"`
	// Replicas > 1 runs the mix against an in-process replica fleet behind
	// the gateway instead of a single server.
	Replicas int `json:"replicas,omitempty"`
}

// Validate checks the mix is runnable, resolving every model name against
// the registry (shrunk forms included).
func (m Mix) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("workload: mix has no name")
	}
	if len(m.Models) == 0 {
		return fmt.Errorf("workload: mix %s has no models", m.Name)
	}
	for _, ms := range m.Models {
		if ms.Weight <= 0 {
			return fmt.Errorf("workload: mix %s: model %q has weight %d", m.Name, ms.Network, ms.Weight)
		}
		if _, err := ResolveShape(ms.Network); err != nil {
			return fmt.Errorf("workload: mix %s: %w", m.Name, err)
		}
	}
	if m.Tenants <= 0 {
		return fmt.Errorf("workload: mix %s has %d tenants", m.Name, m.Tenants)
	}
	if m.SessionRatio < 0 || m.SessionRatio > 1 {
		return fmt.Errorf("workload: mix %s session ratio %v out of [0,1]", m.Name, m.SessionRatio)
	}
	if m.AttackFraction < 0 || m.AttackFraction >= 1 {
		return fmt.Errorf("workload: mix %s attack fraction %v out of [0,1)", m.Name, m.AttackFraction)
	}
	if err := m.Arrival.Validate(); err != nil {
		return fmt.Errorf("workload: mix %s: %w", m.Name, err)
	}
	return nil
}

// ModelCycle expands the weighted model distribution into the repeating
// assignment cycle streams draw from.
func (m Mix) ModelCycle() []string {
	var cycle []string
	for _, ms := range m.Models {
		for i := 0; i < ms.Weight; i++ {
			cycle = append(cycle, ms.Network)
		}
	}
	return cycle
}

// PhaseDurations splits a total run duration across the curve's phases.
func (m Mix) PhaseDurations(total time.Duration) []time.Duration {
	phases := m.Arrival.Phases()
	out := make([]time.Duration, len(phases))
	for i, p := range phases {
		out[i] = time.Duration(p.Frac * float64(total))
	}
	return out
}

// Mini is the serving demo network: one layer of every type, small enough
// that a functional secure inference completes in milliseconds — the unit
// of work for load generation, smoke tests and most workload mixes.
func Mini() Network {
	return Network{
		Name: "Mini",
		Note: "serving demo network (conv/pool/depthwise/pointwise/FC)",
		Layers: []Layer{
			{Name: "c1", Type: Conv, C: 3, H: 12, W: 12, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "p1", Type: Pool, C: 8, H: 12, W: 12, K: 8, R: 2, S: 2, Stride: 2, Valid: true},
			{Name: "dw", Type: Depthwise, C: 8, H: 6, W: 6, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "pw", Type: Pointwise, C: 8, H: 6, W: 6, K: 16, R: 1, S: 1, Stride: 1},
			{Name: "fc", Type: FC, C: 16 * 6 * 6, H: 1, W: 1, K: 10, R: 1, S: 1, Stride: 1},
		},
	}
}

// ResolveShape resolves a mix model name: "Mini", a registry network, or
// "Name/div" for a shrunk benchmark.
func ResolveShape(name string) (Network, error) {
	if name == Mini().Name {
		return Mini(), nil
	}
	if n, err := ByName(name); err == nil {
		return n, nil
	}
	if base, divs, ok := strings.Cut(name, "/"); ok {
		if div, err := strconv.Atoi(divs); err == nil {
			if n, err := ByName(base); err == nil {
				return Shrink(n, div)
			}
		}
	}
	return Network{}, fmt.Errorf("workload: unknown model shape %q", name)
}

// Mixes returns the named workload suite, W1–W6. Rates are sized for the
// one-core CI container: every mix completes a short-iteration smoke in a
// few seconds while still separating the phases' percentile trajectories.
func Mixes() []Mix {
	return []Mix{
		{
			Name:        "W1",
			Title:       "small-model-burst",
			Description: "stateless Mini traffic in Poisson square-wave bursts: shed behaviour and batch formation under pressure",
			Models:      []ModelShare{{Network: "Mini", Weight: 1}},
			Tenants:     2,
			Arrival:     ArrivalCurve{Kind: ArrivalBurst, RPS: 40, PeakRPS: 240, Steps: 2, Poisson: true},
			Residency:   true,
			FixedModel:  true,
		},
		{
			Name:         "W2",
			Title:        "deep-model-steady",
			Description:  "one pinned deep model (MobileNet/8, 28 layers) on sessions at a steady Poisson rate: the residency hit path end to end",
			Models:       []ModelShare{{Network: "MobileNet/8", Weight: 1}},
			Tenants:      1,
			SessionRatio: 1,
			Arrival:      ArrivalCurve{Kind: ArrivalConstant, RPS: 20, Poisson: true},
			Residency:    true,
			FixedModel:   true,
		},
		{
			Name:         "W3",
			Title:        "session-churn",
			Description:  "session-bound Mini traffic rotating sessions every few requests: session setup joins the steady-state path",
			Models:       []ModelShare{{Network: "Mini", Weight: 1}},
			Tenants:      2,
			SessionRatio: 1,
			SessionEvery: 4,
			Arrival:      ArrivalCurve{Kind: ArrivalConstant, RPS: 60, Poisson: true},
			Residency:    true,
			FixedModel:   true,
		},
		{
			Name:           "W4",
			Title:          "attack-laced",
			Description:    "honest Mini traffic with a quarter of offered load replay-MITM attacks from one adversarial tenant: quarantine cost on the honest path",
			Models:         []ModelShare{{Network: "Mini", Weight: 1}},
			Tenants:        2,
			SessionRatio:   0.5,
			AttackFraction: 0.25,
			Arrival:        ArrivalCurve{Kind: ArrivalConstant, RPS: 60, Poisson: true},
			Residency:      true,
			FixedModel:     true,
		},
		{
			Name:        "W5",
			Title:       "mixed-designs",
			Description: "three model shapes with a fresh model seed per request on a ramp: batch-key fragmentation and the residency-hostile worst case",
			Models: []ModelShare{
				{Network: "Mini", Weight: 2},
				{Network: "ResNet18/16", Weight: 1},
				{Network: "MobileNet/16", Weight: 1},
			},
			Tenants:   4,
			Arrival:   ArrivalCurve{Kind: ArrivalRamp, RPS: 30, PeakRPS: 120, Steps: 3, Poisson: true},
			Residency: false,
		},
		{
			Name:         "W6",
			Title:        "gateway-pair",
			Description:  "mixed session/stateless Mini traffic through the 2-replica gateway fleet: routing, spread and the proxy hop under load",
			Models:       []ModelShare{{Network: "Mini", Weight: 1}},
			Tenants:      2,
			SessionRatio: 0.5,
			Arrival:      ArrivalCurve{Kind: ArrivalConstant, RPS: 80, Poisson: true},
			Residency:    true,
			FixedModel:   true,
			Replicas:     2,
		},
	}
}

// MixByName returns the named mix ("W1" or its title) or an error listing
// the registry.
func MixByName(name string) (Mix, error) {
	var names []string
	for _, m := range Mixes() {
		if m.Name == name || m.Title == name {
			return m, nil
		}
		names = append(names, m.Name)
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q (have %s)", name, strings.Join(names, ", "))
}
