package workload

import "fmt"

// PreprocStyle is the computation style of an image pre-processing stage
// (Section 5.2.1): Style-1 transforms each channel independently
// (S_x = T_x(X)); Style-2 merges all input channels into one output
// (S = T(R,G,B)); Style-3 merges them into several transformed outputs
// (S_i = T_i(R,G,B)).
type PreprocStyle uint8

const (
	// Style1 is a per-channel transform (also the pattern of pooling).
	Style1 PreprocStyle = iota + 1
	// Style2 folds all channels into one output channel.
	Style2
	// Style3 folds all channels into K transformed output channels.
	Style3
)

// String implements fmt.Stringer.
func (s PreprocStyle) String() string {
	switch s {
	case Style1:
		return "style-1"
	case Style2:
		return "style-2"
	case Style3:
		return "style-3"
	default:
		return fmt.Sprintf("PreprocStyle(%d)", uint8(s))
	}
}

// PreprocStage builds the layer of one pre-processing stage over an
// h x w image with c channels, using an r x r window. Style-2 produces a
// single channel; Style-3 produces k channels; Style-1 keeps c.
func PreprocStage(name string, style PreprocStyle, c, h, w, r, k int) (Layer, error) {
	if c <= 0 || h <= 0 || w <= 0 || r <= 0 {
		return Layer{}, fmt.Errorf("workload: invalid preproc stage %q: c=%d h=%d w=%d r=%d", name, c, h, w, r)
	}
	switch style {
	case Style1:
		// Per-channel window transform: depthwise semantics.
		return Layer{Name: name, Type: Depthwise, C: c, H: h, W: w, K: c, R: r, S: r, Stride: 1}, nil
	case Style2:
		return Layer{Name: name, Type: Conv, C: c, H: h, W: w, K: 1, R: r, S: r, Stride: 1}, nil
	case Style3:
		if k <= 0 {
			return Layer{}, fmt.Errorf("workload: style-3 stage %q needs k > 0", name)
		}
		return Layer{Name: name, Type: Conv, C: c, H: h, W: w, K: k, R: r, S: r, Stride: 1}, nil
	default:
		return Layer{}, fmt.Errorf("workload: unknown preproc style %d", uint8(style))
	}
}

// PreprocPipeline builds a representative camera-style pre-processing
// pipeline over an h x w RGB image, covering all three styles of
// Tables 8-10 before a classifier-ready downsample:
//
//	denoise   Style-1: per-channel 3x3 filter (e.g. median/gaussian)
//	colormap  Style-3: 3x3 color-space transform to k intermediate planes
//	luma      Style-2: fold the planes into a single luminance channel
//	edges     Style-1: per-channel edge enhancement on the luma plane
//	downsample 2x2 pooling
func PreprocPipeline(h, w int) (Network, error) {
	denoise, err := PreprocStage("denoise", Style1, 3, h, w, 3, 0)
	if err != nil {
		return Network{}, err
	}
	colormap, err := PreprocStage("colormap", Style3, 3, h, w, 1, 8)
	if err != nil {
		return Network{}, err
	}
	luma, err := PreprocStage("luma", Style2, 8, h, w, 1, 0)
	if err != nil {
		return Network{}, err
	}
	edges, err := PreprocStage("edges", Style1, 1, h, w, 3, 0)
	if err != nil {
		return Network{}, err
	}
	n := Network{
		Name: fmt.Sprintf("preproc-%dx%d", h, w),
		Note: "image pre-processing pipeline exercising Styles 1-3 (Tables 8-10)",
		Layers: []Layer{
			denoise, colormap, luma, edges,
			{Name: "downsample", Type: Pool, C: 1, H: h, W: w, K: 1, R: 2, S: 2, Stride: 2, Valid: true},
		},
	}
	if err := n.Validate(); err != nil {
		return Network{}, err
	}
	return n, nil
}
