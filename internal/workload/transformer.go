package workload

import "fmt"

// TransformerConfig shapes an encoder-only transformer whose matmuls the
// NPU executes with the tiled patterns of Table 4. A matmul
// X(M x K) * W(K x N) maps onto the simulator as a 1x1 convolution: K input
// channels over an M x 1 spatial extent producing N output channels, so the
// reduction loop (c_T) plays Table 4's shared dimension and the row tiles
// (h_T) its output rows.
type TransformerConfig struct {
	Name     string
	Layers   int  // encoder blocks
	SeqLen   int  // tokens (M)
	Model    int  // model width d (K/N of the projections)
	FFN      int  // feed-forward inner width
	AttnMats bool // include the score/value matmuls (modeled with static operands)
}

// BERTBase returns the canonical BERT-base encoder shape.
func BERTBase() TransformerConfig {
	return TransformerConfig{
		Name: "BERT-base", Layers: 12, SeqLen: 128, Model: 768, FFN: 3072, AttnMats: true,
	}
}

// TinyTransformer returns a small configuration for fast tests.
func TinyTransformer() TransformerConfig {
	return TransformerConfig{
		Name: "TinyTransformer", Layers: 2, SeqLen: 16, Model: 64, FFN: 128, AttnMats: true,
	}
}

// matmul builds the 1x1-conv encoding of an (M x K) * (K x N) matrix
// multiplication.
func matmul(name string, m, k, n int) Layer {
	return Layer{
		Name: name, Type: Pointwise,
		C: k, H: m, W: 1, K: n, R: 1, S: 1, Stride: 1,
	}
}

// Transformer builds the encoder as a layer sequence. The attention
// score (Q*K^T) and value (scores*V) products multiply two activations; the
// simulator's substrate carries static second operands, so they are modeled
// as matmuls of the same shape with resident weights — the memory-access
// pattern (Table 4) is identical, which is what the secure-NPU evaluation
// measures. This substitution is recorded in DESIGN.md.
func Transformer(cfg TransformerConfig) (Network, error) {
	if cfg.Layers <= 0 || cfg.SeqLen <= 0 || cfg.Model <= 0 || cfg.FFN <= 0 {
		return Network{}, fmt.Errorf("workload: invalid transformer config %+v", cfg)
	}
	n := Network{
		Name: cfg.Name,
		Note: "encoder-only transformer; attention activation-activation matmuls modeled with static operands",
	}
	for b := 1; b <= cfg.Layers; b++ {
		p := func(stage string) string { return fmt.Sprintf("enc%d_%s", b, stage) }
		// Q, K, V projections: (seq x d) * (d x d).
		n.Layers = append(n.Layers,
			matmul(p("q"), cfg.SeqLen, cfg.Model, cfg.Model),
			matmul(p("k"), cfg.SeqLen, cfg.Model, cfg.Model),
			matmul(p("v"), cfg.SeqLen, cfg.Model, cfg.Model),
		)
		if cfg.AttnMats {
			// Scores: (seq x d) * (d x seq); context: (seq x seq) * (seq x d).
			n.Layers = append(n.Layers,
				matmul(p("scores"), cfg.SeqLen, cfg.Model, cfg.SeqLen),
				matmul(p("context"), cfg.SeqLen, cfg.SeqLen, cfg.Model),
			)
		}
		// Output projection and the two FFN matmuls.
		n.Layers = append(n.Layers,
			matmul(p("attnout"), cfg.SeqLen, cfg.Model, cfg.Model),
			matmul(p("ffn1"), cfg.SeqLen, cfg.Model, cfg.FFN),
			matmul(p("ffn2"), cfg.SeqLen, cfg.FFN, cfg.Model),
		)
	}
	if err := n.Validate(); err != nil {
		return Network{}, err
	}
	return n, nil
}
