package workload

import (
	"math"
	"testing"
)

func TestTransformerValidates(t *testing.T) {
	for _, cfg := range []TransformerConfig{BERTBase(), TinyTransformer()} {
		n, err := Transformer(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		perBlock := 8
		if !cfg.AttnMats {
			perBlock = 6
		}
		if len(n.Layers) != cfg.Layers*perBlock {
			t.Fatalf("%s: %d layers, want %d", cfg.Name, len(n.Layers), cfg.Layers*perBlock)
		}
	}
}

func TestTransformerRejectsInvalid(t *testing.T) {
	if _, err := Transformer(TransformerConfig{Name: "bad"}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// BERT-base encoder parameters are famously ~85 M (without embeddings).
func TestBERTBaseParams(t *testing.T) {
	n, err := Transformer(BERTBase())
	if err != nil {
		t.Fatal(err)
	}
	// Exclude the attention activation-activation stand-ins: their
	// "weights" model activations, not parameters.
	var params int64
	for _, l := range n.Layers {
		if l.Name[len(l.Name)-len("scores"):] == "scores" ||
			len(l.Name) >= len("context") && l.Name[len(l.Name)-len("context"):] == "context" {
			continue
		}
		params += l.Params()
	}
	want := 85e6
	if rel := math.Abs(float64(params)-want) / want; rel > 0.05 {
		t.Fatalf("BERT-base encoder params = %.1fM, want ~85M", float64(params)/1e6)
	}
}

func TestMatmulEncoding(t *testing.T) {
	l := matmul("mm", 128, 768, 3072)
	if l.C != 768 || l.H != 128 || l.W != 1 || l.K != 3072 || l.R != 1 {
		t.Fatalf("matmul encoding: %+v", l)
	}
	if l.OutH() != 128 || l.OutW() != 1 {
		t.Fatal("matmul output extent wrong")
	}
	// MACs of (M x K) * (K x N) = M*K*N.
	if l.MACs() != 128*768*3072 {
		t.Fatalf("matmul MACs = %d", l.MACs())
	}
}
