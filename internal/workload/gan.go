package workload

import "fmt"

// Deconv builds the deconvolution (transposed convolution) of Section 5.2
// as the paper prescribes: a zero-insertion upsampling pre-processing layer
// followed by an ordinary convolution, so the conv pattern tables apply
// unchanged. The pair consumes c channels at h x w and produces k channels
// at (h*up) x (w*up).
func Deconv(name string, c, h, w, k, r, up int) ([]Layer, error) {
	if up <= 0 {
		return nil, fmt.Errorf("workload: deconv %q needs a positive upsampling factor, got %d", name, up)
	}
	pair := []Layer{
		{Name: name + "_up", Type: Upsample, C: c, H: h, W: w, K: c, R: 1, S: 1, Stride: up},
		{Name: name + "_conv", Type: Conv, C: c, H: h * up, W: w * up, K: k, R: r, S: r, Stride: 1},
	}
	for _, l := range pair {
		if err := l.Validate(); err != nil {
			return nil, err
		}
	}
	return pair, nil
}

// GANGeneratorConfig shapes a DCGAN-style generator: a seed volume expanded
// by successive deconvolutions to the output image.
type GANGeneratorConfig struct {
	Name      string
	SeedChans int // channels of the 4x4 seed volume
	SeedSize  int // seed spatial extent
	Stages    int // deconv stages, each doubling the extent and halving channels
	OutChans  int // channels of the final image (e.g. 3 for RGB)
	Kernel    int // deconv kernel extent (DCGAN uses 5; 3 also common)
}

// DCGAN returns the canonical DCGAN generator shape: 4x4x1024 seed expanded
// through four stages to a 64x64x3 image.
func DCGAN() GANGeneratorConfig {
	return GANGeneratorConfig{
		Name: "DCGAN-G", SeedChans: 1024, SeedSize: 4, Stages: 4, OutChans: 3, Kernel: 5,
	}
}

// TinyGAN returns a small generator for fast tests: 4x4x16 -> 16x16x3.
func TinyGAN() GANGeneratorConfig {
	return GANGeneratorConfig{
		Name: "TinyGAN-G", SeedChans: 16, SeedSize: 4, Stages: 2, OutChans: 3, Kernel: 3,
	}
}

// GANGenerator builds the generator network: Stages deconvolutions, each
// doubling the spatial extent; channel width halves per stage until the
// final stage emits OutChans.
func GANGenerator(cfg GANGeneratorConfig) (Network, error) {
	if cfg.SeedChans <= 0 || cfg.SeedSize <= 0 || cfg.Stages <= 0 || cfg.OutChans <= 0 || cfg.Kernel <= 0 {
		return Network{}, fmt.Errorf("workload: invalid GAN config %+v", cfg)
	}
	n := Network{
		Name: cfg.Name,
		Note: "GAN generator: deconvolution = zero-insertion upsample + convolution (Section 5.2)",
	}
	c, h := cfg.SeedChans, cfg.SeedSize
	for s := 1; s <= cfg.Stages; s++ {
		k := c / 2
		if s == cfg.Stages {
			k = cfg.OutChans
		}
		if k <= 0 {
			return Network{}, fmt.Errorf("workload: GAN stage %d has no output channels (seed too narrow)", s)
		}
		pair, err := Deconv(fmt.Sprintf("g%d", s), c, h, h, k, cfg.Kernel, 2)
		if err != nil {
			return Network{}, err
		}
		n.Layers = append(n.Layers, pair...)
		c, h = k, h*2
	}
	if err := n.Validate(); err != nil {
		return Network{}, err
	}
	return n, nil
}
