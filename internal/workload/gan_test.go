package workload

import "testing"

func TestDeconvPair(t *testing.T) {
	pair, err := Deconv("d", 8, 4, 4, 4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pair) != 2 {
		t.Fatalf("pair len = %d", len(pair))
	}
	up, conv := pair[0], pair[1]
	if up.Type != Upsample || up.OutH() != 8 || up.K != 8 {
		t.Fatalf("upsample layer: %+v", up)
	}
	if conv.C != 8 || conv.H != 8 || conv.K != 4 || conv.OutH() != 8 {
		t.Fatalf("conv layer: %+v", conv)
	}
	if _, err := Deconv("bad", 8, 4, 4, 4, 3, 0); err == nil {
		t.Fatal("zero upsampling accepted")
	}
}

func TestUpsampleGeometry(t *testing.T) {
	l := Layer{Name: "up", Type: Upsample, C: 4, H: 8, W: 8, K: 4, R: 1, S: 1, Stride: 2}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.OutH() != 16 || l.OutW() != 16 {
		t.Fatalf("upsample out = %dx%d", l.OutH(), l.OutW())
	}
	if l.Params() != 0 || !l.PerChannel() || l.ReductionChannels() != 1 {
		t.Fatal("upsample properties wrong")
	}
	if l.MACs() != 16*16*4 {
		t.Fatalf("upsample MACs = %d", l.MACs())
	}
	bad := l
	bad.K = 8
	if bad.Validate() == nil {
		t.Fatal("upsample with K != C accepted")
	}
}

func TestGANGenerators(t *testing.T) {
	for _, cfg := range []GANGeneratorConfig{DCGAN(), TinyGAN()} {
		n, err := GANGenerator(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(n.Layers) != cfg.Stages*2 {
			t.Fatalf("%s: %d layers, want %d", cfg.Name, len(n.Layers), cfg.Stages*2)
		}
		last := n.Layers[len(n.Layers)-1]
		wantH := cfg.SeedSize << cfg.Stages
		if last.K != cfg.OutChans || last.OutH() != wantH {
			t.Fatalf("%s output: K=%d H=%d, want K=%d H=%d", cfg.Name, last.K, last.OutH(), cfg.OutChans, wantH)
		}
	}
	if _, err := GANGenerator(GANGeneratorConfig{}); err == nil {
		t.Fatal("invalid GAN config accepted")
	}
	if _, err := GANGenerator(GANGeneratorConfig{Name: "narrow", SeedChans: 1, SeedSize: 4, Stages: 3, OutChans: 3, Kernel: 3}); err == nil {
		t.Fatal("too-narrow seed accepted")
	}
}
