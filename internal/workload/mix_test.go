package workload_test

import (
	"math"
	"testing"
	"time"

	"seculator/internal/workload"
)

// Every registered mix validates, resolves all its model shapes (shrunk
// forms included), and the suite covers the intended shape space: bursts,
// ramps, sessions, churn, attacks, multi-model keys and a gateway fleet.
func TestMixRegistry(t *testing.T) {
	mixes := workload.Mixes()
	if len(mixes) != 6 {
		t.Fatalf("registry has %d mixes, want 6", len(mixes))
	}
	seen := map[string]bool{}
	var hasBurst, hasRamp, hasChurn, hasAttack, hasMulti, hasGateway bool
	for _, m := range mixes {
		if err := m.Validate(); err != nil {
			t.Errorf("mix %s invalid: %v", m.Name, err)
		}
		if seen[m.Name] {
			t.Errorf("duplicate mix name %s", m.Name)
		}
		seen[m.Name] = true
		for _, ms := range m.Models {
			if _, err := workload.ResolveShape(ms.Network); err != nil {
				t.Errorf("mix %s: %v", m.Name, err)
			}
		}
		switch m.Arrival.Kind {
		case workload.ArrivalBurst:
			hasBurst = true
		case workload.ArrivalRamp:
			hasRamp = true
		}
		if m.SessionEvery > 0 {
			hasChurn = true
		}
		if m.AttackFraction > 0 {
			hasAttack = true
		}
		if len(m.Models) > 1 {
			hasMulti = true
		}
		if m.Replicas > 1 {
			hasGateway = true
		}
	}
	for name, ok := range map[string]bool{
		"burst": hasBurst, "ramp": hasRamp, "churn": hasChurn,
		"attack": hasAttack, "multi-model": hasMulti, "gateway": hasGateway,
	} {
		if !ok {
			t.Errorf("no mix exercises the %s shape", name)
		}
	}
}

func TestMixByName(t *testing.T) {
	byKey, err := workload.MixByName("W4")
	if err != nil {
		t.Fatal(err)
	}
	byTitle, err := workload.MixByName("attack-laced")
	if err != nil {
		t.Fatal(err)
	}
	if byKey.Name != byTitle.Name {
		t.Fatalf("W4 and attack-laced resolve differently: %s vs %s", byKey.Name, byTitle.Name)
	}
	if _, err := workload.MixByName("W99"); err == nil {
		t.Fatal("unknown mix resolved")
	}
}

// Curve expansion: phase fractions always sum to 1, ramps climb
// monotonically from RPS to PeakRPS, bursts alternate low/high.
func TestArrivalCurvePhases(t *testing.T) {
	ramp := workload.ArrivalCurve{Kind: workload.ArrivalRamp, RPS: 30, PeakRPS: 120, Steps: 3}
	ps := ramp.Phases()
	if len(ps) != 3 {
		t.Fatalf("ramp expanded to %d phases, want 3", len(ps))
	}
	if ps[0].RPS != 30 || ps[len(ps)-1].RPS != 120 {
		t.Fatalf("ramp endpoints %v..%v, want 30..120", ps[0].RPS, ps[len(ps)-1].RPS)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].RPS <= ps[i-1].RPS {
			t.Fatalf("ramp not monotonic at %d: %v", i, ps)
		}
	}

	burst := workload.ArrivalCurve{Kind: workload.ArrivalBurst, RPS: 40, PeakRPS: 240, Steps: 2}
	ps = burst.Phases()
	if len(ps) != 4 {
		t.Fatalf("burst expanded to %d phases, want 4", len(ps))
	}
	for i, p := range ps {
		want := 40.0
		if i%2 == 1 {
			want = 240
		}
		if p.RPS != want {
			t.Fatalf("burst phase %d at %v RPS, want %v", i, p.RPS, want)
		}
	}

	flat := workload.ArrivalCurve{Kind: workload.ArrivalConstant, RPS: 60}
	if ps = flat.Phases(); len(ps) != 1 || ps[0].RPS != 60 || ps[0].Frac != 1 {
		t.Fatalf("constant curve expanded to %+v", ps)
	}

	for _, c := range []workload.ArrivalCurve{ramp, burst, flat} {
		var f float64
		for _, p := range c.Phases() {
			f += p.Frac
		}
		if math.Abs(f-1) > 1e-9 {
			t.Fatalf("%s phases cover %v of the run", c.Kind, f)
		}
	}
}

func TestMixValidateRejects(t *testing.T) {
	base := workload.Mix{
		Name:    "T",
		Models:  []workload.ModelShare{{Network: "Mini", Weight: 1}},
		Tenants: 1,
		Arrival: workload.ArrivalCurve{Kind: workload.ArrivalConstant, RPS: 10},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base mix invalid: %v", err)
	}
	mutations := map[string]func(*workload.Mix){
		"no models":       func(m *workload.Mix) { m.Models = nil },
		"unknown model":   func(m *workload.Mix) { m.Models = []workload.ModelShare{{Network: "NoSuch", Weight: 1}} },
		"zero weight":     func(m *workload.Mix) { m.Models[0].Weight = 0 },
		"no tenants":      func(m *workload.Mix) { m.Tenants = 0 },
		"session ratio":   func(m *workload.Mix) { m.SessionRatio = 1.5 },
		"attack fraction": func(m *workload.Mix) { m.AttackFraction = 1 },
		"zero rps":        func(m *workload.Mix) { m.Arrival.RPS = 0 },
		"bad kind":        func(m *workload.Mix) { m.Arrival.Kind = "sawtooth" },
		"peak below base": func(m *workload.Mix) {
			m.Arrival = workload.ArrivalCurve{Kind: workload.ArrivalRamp, RPS: 100, PeakRPS: 10}
		},
	}
	for name, mutate := range mutations {
		m := base
		m.Models = append([]workload.ModelShare(nil), base.Models...)
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}

// ResolveShape accepts the Mini serving net, registry networks and shrunk
// "Name/div" forms, and the results validate.
func TestResolveShape(t *testing.T) {
	for _, name := range []string{"Mini", "MobileNet", "MobileNet/8", "ResNet18/16"} {
		n, err := workload.ResolveShape(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s resolves to invalid network: %v", name, err)
		}
	}
	for _, name := range []string{"", "NoSuch", "NoSuch/4", "Mini/x"} {
		if _, err := workload.ResolveShape(name); err == nil {
			t.Fatalf("%q resolved", name)
		}
	}
}

func TestMixModelCycleAndDurations(t *testing.T) {
	m, err := workload.MixByName("W5")
	if err != nil {
		t.Fatal(err)
	}
	cycle := m.ModelCycle()
	if len(cycle) != 4 {
		t.Fatalf("W5 cycle %v, want 4 entries (Mini weighted 2)", cycle)
	}
	minis := 0
	for _, n := range cycle {
		if n == "Mini" {
			minis++
		}
	}
	if minis != 2 {
		t.Fatalf("W5 cycle has %d Mini entries, want 2: %v", minis, cycle)
	}

	ds := m.PhaseDurations(3 * time.Second)
	if len(ds) != len(m.Arrival.Phases()) {
		t.Fatalf("%d durations for %d phases", len(ds), len(m.Arrival.Phases()))
	}
	var total time.Duration
	for _, d := range ds {
		if d <= 0 {
			t.Fatalf("non-positive phase duration in %v", ds)
		}
		total += d
	}
	if diff := total - 3*time.Second; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("durations sum to %v, want ~3s", total)
	}
}
