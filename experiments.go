package seculator

import (
	"context"
	"fmt"
	"strings"

	"seculator/internal/hw"
	"seculator/internal/parallel"
	"seculator/internal/pattern"
	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/widen"
	"seculator/internal/workload"
)

// baselineOf returns the Baseline result of a design comparison, looked up
// by design rather than slice position, so the normalization denominator
// cannot silently change if the design set is reordered.
func baselineOf(rs []runner.Result) (runner.Result, error) {
	for _, r := range rs {
		if r.Design == protect.Baseline {
			return r, nil
		}
	}
	return runner.Result{}, fmt.Errorf("seculator: design set has no Baseline to normalize against")
}

// Table is a rendered experiment result: a titled grid of cells plus notes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown, for pasting into
// EXPERIMENTS.md-style reports.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			fmt.Fprintf(&b, " %s |", c)
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// PerfPoint is one (network, design) performance/traffic measurement,
// normalized to the network's Baseline run.
type PerfPoint struct {
	Network     string
	Design      Design
	Performance float64 // 1/time, baseline = 1.0
	Traffic     float64 // total DRAM blocks, baseline = 1.0
	Cycles      uint64
}

// CharacterizationResult is Experiment E1/E2 (Figures 4 and 5): the
// motivation study of Section 4.
type CharacterizationResult struct {
	Points []PerfPoint // Baseline, Secure, TNPU, GuardNN per network

	// Secure-configuration cache behaviour per network (Figure 5).
	MACMissRate     map[string]float64
	CounterMissRate map[string]float64
}

// Fig4Characterization reproduces Figure 4 (and gathers Figure 5's cache
// data): Baseline vs Secure vs TNPU vs GuardNN across the five benchmarks.
// The five networks fan out on the worker pool (each network in turn fans
// out over its designs); points land in network-then-design order, so the
// tables are byte-identical at any worker count.
func Fig4Characterization(cfg Config) (CharacterizationResult, error) {
	res := CharacterizationResult{
		MACMissRate:     map[string]float64{},
		CounterMissRate: map[string]float64{},
	}
	designs := []Design{Baseline, Secure, TNPU, GuardNN}
	nets := workload.All()
	perNet, err := parallel.Map(context.Background(), 0, nets,
		func(ctx context.Context, n workload.Network) ([]runner.Result, error) {
			return runner.RunAll(ctx, n, designs, cfg)
		})
	if err != nil {
		return res, err
	}
	for i, n := range nets {
		rs := perNet[i]
		base, err := baselineOf(rs)
		if err != nil {
			return res, err
		}
		for _, r := range rs {
			res.Points = append(res.Points, PerfPoint{
				Network:     n.Name,
				Design:      r.Design,
				Performance: r.Performance(base),
				Traffic:     r.NormalizedTraffic(base),
				Cycles:      uint64(r.Cycles),
			})
			if r.Design == Secure {
				res.MACMissRate[n.Name] = r.MACCache.MissRate()
				res.CounterMissRate[n.Name] = r.CounterCache.MissRate()
			}
		}
	}
	return res, nil
}

// Fig4Table renders the performance side (Figure 4).
func (r CharacterizationResult) Fig4Table() Table {
	return perfTable("Figure 4: characterization — normalized performance",
		r.Points, []Design{Baseline, Secure, TNPU, GuardNN})
}

// Fig5Table renders the cache miss-rate side (Figure 5).
func (r CharacterizationResult) Fig5Table() Table {
	t := Table{
		Title:  "Figure 5: Secure-config cache miss rates",
		Header: []string{"network", "mac-cache miss", "counter-cache miss", "ratio"},
		Notes: []string{
			"one MAC line tracks 8x fewer pixels than one counter line; the miss-rate ratio shows it",
		},
	}
	for _, n := range workload.All() {
		m, c := r.MACMissRate[n.Name], r.CounterMissRate[n.Name]
		ratio := 0.0
		if c > 0 {
			ratio = m / c
		}
		t.Rows = append(t.Rows, []string{
			n.Name, fmt.Sprintf("%.3f", m), fmt.Sprintf("%.3f", c), fmt.Sprintf("%.1fx", ratio),
		})
	}
	return t
}

// EvaluationResult is Experiments E9/E10 (Figures 7 and 8): all six
// designs across the five benchmarks.
type EvaluationResult struct {
	Points []PerfPoint
}

// Fig7Performance reproduces Figures 7 and 8. Networks fan out on the
// worker pool; point order is deterministic at any worker count.
func Fig7Performance(cfg Config) (EvaluationResult, error) {
	var res EvaluationResult
	nets := workload.All()
	perNet, err := parallel.Map(context.Background(), 0, nets,
		func(ctx context.Context, n workload.Network) ([]runner.Result, error) {
			return runner.RunAll(ctx, n, protect.Designs(), cfg)
		})
	if err != nil {
		return res, err
	}
	for i, n := range nets {
		rs := perNet[i]
		base, err := baselineOf(rs)
		if err != nil {
			return res, err
		}
		for _, r := range rs {
			res.Points = append(res.Points, PerfPoint{
				Network:     n.Name,
				Design:      r.Design,
				Performance: r.Performance(base),
				Traffic:     r.NormalizedTraffic(base),
				Cycles:      uint64(r.Cycles),
			})
		}
	}
	return res, nil
}

// Fig7Table renders normalized performance (Figure 7).
func (r EvaluationResult) Fig7Table() Table {
	return perfTable("Figure 7: normalized performance", r.Points, protect.Designs())
}

// Fig8Table renders normalized memory traffic (Figure 8).
func (r EvaluationResult) Fig8Table() Table {
	t := Table{
		Title:  "Figure 8: normalized memory traffic",
		Header: []string{"network"},
	}
	for _, d := range protect.Designs() {
		t.Header = append(t.Header, d.String())
	}
	byNet := groupByNetwork(r.Points)
	for _, n := range workload.All() {
		row := []string{n.Name}
		for _, d := range protect.Designs() {
			row = append(row, fmt.Sprintf("%.3f", byNet[n.Name][d].Traffic))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Mean returns the across-network mean of a design's metric.
func (r EvaluationResult) Mean(d Design, traffic bool) float64 {
	var sum float64
	var n int
	for _, p := range r.Points {
		if p.Design != d {
			continue
		}
		if traffic {
			sum += p.Traffic
		} else {
			sum += p.Performance
		}
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WideningPoint is one bar of Figure 9: a design's execution latency on a
// widened layer, normalized to its own 32x32x3 latency.
type WideningPoint struct {
	Design    Design
	InputSize int // widened H = W (channels fixed at 3)
	Latency   float64
}

// WideningResult is Experiment E11 (Figure 9).
type WideningResult struct {
	Points []WideningPoint
	Sizes  []int
}

// Fig9Widening reproduces Figure 9: a base 32x32x3 conv layer widened to
// 56, 64, 128, 160 and 192 pixels, run on every design. Latencies are
// normalized to one common reference — the unprotected Baseline at
// 32x32x3 — so the curves compare both protection overhead and its growth
// with the widening factor.
func Fig9Widening(cfg Config) (WideningResult, error) {
	sizes := []int{32, 56, 64, 128, 160, 192}
	res := WideningResult{Sizes: sizes}
	baseLayer := workload.Layer{
		Name: "base", Type: workload.Conv,
		C: 3, H: 32, W: 32, K: 16, R: 3, S: 3, Stride: 1,
	}
	run := func(ctx context.Context, d Design, size int) (float64, error) {
		l, err := widen.Layer(baseLayer, size, size, 3)
		if err != nil {
			return 0, err
		}
		net := workload.Network{Name: fmt.Sprintf("widen-%d", size), Layers: []workload.Layer{l}}
		r, err := runner.RunCached(ctx, net, d, cfg)
		if err != nil {
			return 0, err
		}
		return float64(r.Cycles), nil
	}
	// Every (design, size) cell is an independent single-layer simulation:
	// fan them all out at once. The Baseline@32 reference is one of the
	// cells, so the memo cache hands it back without a second simulation.
	type cell struct {
		d    Design
		size int
	}
	var cells []cell
	for _, d := range protect.Designs() {
		for _, size := range sizes {
			cells = append(cells, cell{d, size})
		}
	}
	lat, err := parallel.Map(context.Background(), 0, cells,
		func(ctx context.Context, c cell) (float64, error) {
			return run(ctx, c.d, c.size)
		})
	if err != nil {
		return res, err
	}
	ref, err := run(context.Background(), Baseline, sizes[0])
	if err != nil {
		return res, err
	}
	if ref == 0 {
		return res, fmt.Errorf("seculator: zero-cycle widening reference run")
	}
	for i, c := range cells {
		res.Points = append(res.Points, WideningPoint{
			Design: c.d, InputSize: c.size, Latency: lat[i] / ref,
		})
	}
	return res, nil
}

// Fig9Table renders Figure 9.
func (r WideningResult) Fig9Table() Table {
	t := Table{
		Title:  "Figure 9: layer-widening latency (normalized to 32x32x3)",
		Header: []string{"design"},
		Notes:  []string{"lower growth = more scalable; Seculator(+) should grow slowest"},
	}
	for _, s := range r.Sizes {
		t.Header = append(t.Header, fmt.Sprintf("%dx%dx3", s, s))
	}
	byDesign := map[Design]map[int]float64{}
	for _, p := range r.Points {
		if byDesign[p.Design] == nil {
			byDesign[p.Design] = map[int]float64{}
		}
		byDesign[p.Design][p.InputSize] = p.Latency
	}
	for _, d := range protect.Designs() {
		row := []string{d.String()}
		for _, s := range r.Sizes {
			row = append(row, fmt.Sprintf("%.2f", byDesign[d][s]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Growth returns a design's latency at the largest widening size — the
// scalability metric of Figure 9.
func (r WideningResult) Growth(d Design) float64 {
	max := 0.0
	size := 0
	for _, p := range r.Points {
		if p.Design == d && p.InputSize > size {
			size = p.InputSize
			max = p.Latency
		}
	}
	return max
}

// Table5Matrix renders the design feature matrix.
func Table5Matrix() Table {
	t := Table{
		Title:  "Table 5: simulated designs",
		Header: []string{"design", "integrity", "encryption", "anti-replay", "MEA"},
	}
	for _, d := range protect.Designs() {
		p := protect.PropertiesOf(d)
		mea := "x"
		if p.MEAProtection {
			mea = "widen layers"
		}
		enc, integ, replay := p.Encryption, p.IntegrityLevel, p.AntiReplay
		if enc == "" {
			enc, integ, replay = "x", "x", "x"
		}
		t.Rows = append(t.Rows, []string{d.String(), "per-" + integ, enc, replay, mea})
	}
	t.Rows[0] = []string{Baseline.String(), "x", "x", "x", "x"}
	return t
}

// Table6Hardware renders the hardware-overhead model.
func Table6Hardware() Table {
	t := Table{
		Title:  "Table 6: security-hardware overhead (8 nm model)",
		Header: []string{"module", "gates", "area (um^2)", "power (uW)"},
		Notes: []string{
			fmt.Sprintf("Seculator on-chip security state: %d bits vs %d bits of metadata caches in prior work",
				hw.RegisterFileBits(), hw.PriorWorkStorageBits()),
		},
	}
	for _, m := range hw.SeculatorModules() {
		t.Rows = append(t.Rows, []string{
			m.Name, fmt.Sprintf("%d", m.GateCount),
			fmt.Sprintf("%.1f", m.AreaUM2), fmt.Sprintf("%.1f", m.PowerUW),
		})
	}
	ms := hw.SeculatorModules()
	t.Rows = append(t.Rows, []string{
		"TOTAL", "", fmt.Sprintf("%.1f", hw.TotalArea(ms)), fmt.Sprintf("%.1f", hw.TotalPower(ms)),
	})
	return t
}

// PatternTable renders one of the paper's pattern tables ("table2-ir",
// "table2-or", "table3", "table4", "table8", "table9", "table10-ir",
// "table10-or", or "all") for a sample grid.
func PatternTable(which string, g PatternGrid) Table {
	t := Table{
		Title: fmt.Sprintf("Pattern table %s (aHW=%d aC=%d aK=%d)",
			which, g.AlphaHW, g.AlphaC, g.AlphaK),
		Header: []string{"table", "row", "style", "loop order", "WP", "RP", "class"},
	}
	for _, e := range PatternTables() {
		if which != "all" && e.Table != which {
			continue
		}
		m := e.Build(g)
		eff := PatternGrid{AlphaHW: m.AlphaHW, AlphaC: m.AlphaC, AlphaK: m.AlphaK}
		wp := e.PaperWP(eff)
		rp := e.PaperRP(eff)
		t.Rows = append(t.Rows, []string{
			e.Table, fmt.Sprintf("%d", e.Row), e.Style, e.OrderDesc,
			wp.String(), rp.String(), pattern.Classify(wp).String(),
		})
		if e.Note != "" {
			t.Notes = append(t.Notes, fmt.Sprintf("%s row %d: %s", e.Table, e.Row, e.Note))
		}
	}
	return t
}

// perfTable builds a network x design grid of normalized performance.
func perfTable(title string, points []PerfPoint, designs []Design) Table {
	t := Table{Title: title, Header: []string{"network"}}
	for _, d := range designs {
		t.Header = append(t.Header, d.String())
	}
	byNet := groupByNetwork(points)
	for _, n := range workload.All() {
		row := []string{n.Name}
		for _, d := range designs {
			row = append(row, fmt.Sprintf("%.3f", byNet[n.Name][d].Performance))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func groupByNetwork(points []PerfPoint) map[string]map[Design]PerfPoint {
	out := map[string]map[Design]PerfPoint{}
	for _, p := range points {
		if out[p.Network] == nil {
			out[p.Network] = map[Design]PerfPoint{}
		}
		out[p.Network][p.Design] = p
	}
	return out
}
